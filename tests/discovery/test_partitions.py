"""Tests for partition machinery used by dependency discovery."""

import pytest

from repro.discovery.partitions import error_rate, partition, partition_with_keys, refines
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def relation():
    schema = Schema("r", ["A", "B", "C"])
    return Relation(
        schema,
        [
            ("a1", "b1", "c1"),
            ("a1", "b1", "c1"),
            ("a1", "b2", "c2"),
            ("a2", "b1", "c3"),
        ],
    )


class TestPartition:
    def test_partition_on_single_attribute(self, relation):
        classes = partition(relation, ["A"])
        assert sorted(sorted(c) for c in classes) == [[0, 1, 2], [3]]

    def test_partition_on_two_attributes(self, relation):
        classes = partition(relation, ["A", "B"])
        assert sorted(len(c) for c in classes) == [1, 1, 2]

    def test_partition_on_empty_attribute_list(self, relation):
        classes = partition(relation, [])
        assert classes == [(0, 1, 2, 3)]

    def test_partition_of_empty_relation(self):
        empty = Relation(Schema("r", ["A"]))
        assert partition(empty, []) == []
        assert partition(empty, ["A"]) == []

    def test_partition_with_keys(self, relation):
        keyed = partition_with_keys(relation, ["B"])
        assert keyed[("b1",)] == (0, 1, 3)
        assert keyed[("b2",)] == (2,)


class TestRefines:
    def test_holding_fd(self, relation):
        assert refines(relation, ["A", "B"], ["C"])

    def test_violated_fd(self, relation):
        assert not refines(relation, ["A"], ["B"])

    def test_trivial_fd(self, relation):
        assert refines(relation, ["A"], ["A"])

    def test_key_determines_everything(self, relation):
        assert refines(relation, ["C"], ["A", "B"])


class TestErrorRate:
    def test_zero_error_for_holding_fd(self, relation):
        assert error_rate(relation, ["A", "B"], ["C"]) == 0.0

    def test_error_counts_minority_tuples(self, relation):
        # A -> B: group a1 has B values {b1, b1, b2} -> 1 tuple must go.
        assert error_rate(relation, ["A"], ["B"]) == pytest.approx(1 / 4)

    def test_empty_relation(self):
        empty = Relation(Schema("r", ["A", "B"]))
        assert error_rate(empty, ["A"], ["B"]) == 0.0
