"""Property-based cross-checking of the three detection paths.

For random small relations and random CFDs, the pure-Python detector, the
per-CFD SQL detector (CNF and DNF forms) and the merged SQL detector must all
flag exactly the same set of tuples.  This is the strongest correctness net in
the suite: it exercises wildcard/constant handling, grouping, the union-form
DNF rewrite and the '@'-masked merged queries against the straightforward
semantics of Section 2.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.detection.indexed import detect_stream, find_violations_indexed
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.sql.engine import SQLDetector

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = ("v0", "v1", "v2")

row = st.tuples(*(st.sampled_from(VALUES) for _ in ATTRIBUTES))
cell = st.one_of(st.sampled_from(VALUES), st.just("_"))


@st.composite
def cfds(draw, allow_multi_rhs=True):
    n_lhs = draw(st.integers(min_value=1, max_value=2))
    lhs = list(draw(st.permutations(ATTRIBUTES)))[:n_lhs]
    remaining = [attr for attr in ATTRIBUTES if attr not in lhs]
    n_rhs = draw(st.integers(min_value=1, max_value=2 if allow_multi_rhs else 1))
    rhs = remaining[:n_rhs]
    n_patterns = draw(st.integers(min_value=1, max_value=3))
    patterns = []
    for _ in range(n_patterns):
        pattern = {attr: draw(cell) for attr in lhs}
        pattern.update({attr: draw(cell) for attr in rhs})
        patterns.append(pattern)
    return CFD.build(lhs, rhs, patterns)


@st.composite
def relations(draw):
    rows = draw(st.lists(row, min_size=0, max_size=8))
    return Relation(Schema("r", ATTRIBUTES), rows)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_all_detection_paths_agree(relation, cfd_list):
    oracle = find_all_violations(relation, cfd_list).violating_indices()
    indexed = find_violations_indexed(relation, cfd_list).violating_indices()
    with SQLDetector(relation, build_indexes=False) as detector:
        cnf = detector.detect(cfd_list, strategy="per_cfd", form="cnf").report.violating_indices()
        dnf = detector.detect(cfd_list, strategy="per_cfd", form="dnf").report.violating_indices()
        merged = detector.detect(cfd_list, strategy="merged").report.violating_indices()
    assert indexed == oracle
    assert cnf == oracle
    assert dnf == oracle
    assert merged == oracle


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_indexed_backend_reports_identical_violations(relation, cfd_list):
    """Stronger than index-set agreement: every violation object must match."""
    oracle = find_all_violations(relation, cfd_list)
    indexed = find_violations_indexed(relation, cfd_list)
    assert set(indexed.violations) == set(oracle.violations)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=2), st.integers(min_value=1, max_value=4))
def test_streaming_detection_agrees_with_oracle(relation, cfd_list, chunk_size):
    oracle = find_all_violations(relation, cfd_list).violating_indices()
    streamed = detect_stream(relation.schema, iter(relation.rows), cfd_list, chunk_size=chunk_size)
    assert streamed.violating_indices() == oracle


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), cfds())
def test_constant_violation_counts_agree_between_oracle_and_cnf_sql(relation, cfd):
    """Beyond index sets: the per-tuple constant violators must coincide."""
    oracle = find_all_violations(relation, [cfd])
    oracle_constant = {v.tuple_indices[0] for v in oracle.constant_violations()}
    with SQLDetector(relation, build_indexes=False) as detector:
        run = detector.detect([cfd], strategy="per_cfd", form="cnf")
    sql_constant = {v.tuple_indices[0] for v in run.report.constant_violations()}
    assert sql_constant == oracle_constant


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=2))
def test_merged_tableau_cfd_view_matches_separate_checking(relation, cfd_list):
    """The '@'-filled merged CFD (Figure 6) is semantically the union of its sources."""
    from repro.sql.merge import merge_cfds

    merged_cfd = merge_cfds(cfd_list).to_cfd()
    separate = find_all_violations(relation, cfd_list).violating_indices()
    combined = find_all_violations(relation, [merged_cfd]).violating_indices()
    assert combined == separate
