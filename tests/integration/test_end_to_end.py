"""End-to-end integration: generate → reason → detect → repair → verify."""

import pytest

from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import (
    exemption_cfd,
    experiment_cfd_set,
    no_tax_state_cfd,
    zip_city_state_cfd,
    zip_state_cfd,
)
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import cross_check, detect_violations
from repro.reasoning.consistency import is_consistent
from repro.reasoning.mincover import minimal_cover
from repro.repair.heuristic import repair
from repro.sql.engine import SQLDetector


@pytest.fixture(scope="module")
def workload():
    return TaxRecordGenerator(size=1200, noise=0.06, seed=21).generate()


@pytest.fixture(scope="module")
def catalog_cfds():
    return [zip_state_cfd(), zip_city_state_cfd(), exemption_cfd(), no_tax_state_cfd()]


class TestFullPipeline:
    def test_catalog_cfds_are_consistent(self, catalog_cfds):
        assert is_consistent(catalog_cfds)

    def test_minimal_cover_of_catalog_subset_is_equivalent_and_usable(self, workload):
        cfds = [zip_state_cfd(tabsz=30, seed=1), zip_city_state_cfd(tabsz=30, seed=1)]
        cover = minimal_cover(cfds)
        assert cover
        original = detect_violations(workload.relation, cfds)
        covered = detect_violations(workload.relation, cover)
        assert original.violating_indices() == covered.violating_indices()

    def test_detection_backends_agree(self, workload, catalog_cfds):
        result = cross_check(workload.relation, catalog_cfds, form="dnf")
        assert result.agree
        merged = cross_check(workload.relation, catalog_cfds, strategy="merged")
        assert merged.agree

    def test_detection_finds_most_injected_errors(self, workload, catalog_cfds):
        report = detect_violations(workload.relation, catalog_cfds)
        found = report.violating_indices() & workload.dirty_indices
        # Not every corrupted attribute is covered by this CFD set (e.g. a
        # corrupted AC), so require a solid majority rather than all.
        assert len(found) >= 0.5 * len(workload.dirty_indices)

    def test_constant_violations_have_no_false_positives(self, workload, catalog_cfds):
        report = detect_violations(workload.relation, catalog_cfds)
        constant_violators = {v.tuple_indices[0] for v in report.constant_violations()}
        assert constant_violators <= workload.dirty_indices

    def test_repair_then_detect_is_clean(self, workload):
        cfds = [zip_state_cfd(), no_tax_state_cfd()]
        result = repair(workload.relation, cfds)
        assert result.clean
        assert detect_violations(result.relation, cfds).is_clean()
        with SQLDetector(result.relation) as detector:
            assert detector.detect(cfds).report.is_clean()

    def test_repair_preserves_clean_tuples(self, workload):
        cfds = [zip_state_cfd()]
        before = workload.relation
        result = repair(before, cfds)
        report = find_all_violations(before, cfds)
        untouched = set(range(len(before))) - set(report.violating_indices())
        for index in sorted(untouched)[:200]:
            assert result.relation[index] == before[index]


class TestScalingBehaviour:
    def test_detection_scales_with_relation_size(self):
        cfds = [zip_state_cfd(tabsz=100, seed=1)]
        small = TaxRecordGenerator(size=300, noise=0.05, seed=1).generate_relation()
        large = TaxRecordGenerator(size=3000, noise=0.05, seed=1).generate_relation()
        small_report = detect_violations(large, cfds, method="sql", form="dnf")
        large_report = detect_violations(small, cfds, method="sql", form="dnf")
        # Sanity only: both runs complete and produce valid indices.
        assert all(0 <= i < 3000 for i in small_report.violating_indices())
        assert all(0 <= i < 300 for i in large_report.violating_indices())

    def test_multi_cfd_merged_detection_on_generated_data(self):
        generated = TaxRecordGenerator(size=800, noise=0.05, seed=8).generate()
        cfds = experiment_cfd_set(num_cfds=4, tabsz=100, num_consts=0.8, seed=4)
        inmemory = detect_violations(generated.relation, cfds)
        merged = detect_violations(generated.relation, cfds, method="sql", strategy="merged")
        assert inmemory.violating_indices() == merged.violating_indices()
