"""Property-based equivalence of the python and numpy kernel layers.

The kernel×storage×method grid: for random relations and CFD sets, every
columnar-capable detection method and repair engine must produce the
byte-identical violation sequence / repair under ``kernel="python"`` and
``kernel="numpy"``, on both storage layers.  Together with
``test_storage_agreement.py`` (rows vs columnar per storage) this pins the
full lattice — any single acceleration that drifts from the pure-Python
reference semantics fails here first.

The numpy side runs with the small-input fallback disabled
(:data:`repro.kernels.numpy_kernels.SMALL_INPUT_THRESHOLD` forced to 0), so
the vectorised code paths are exercised even though Hypothesis draws small
relations — otherwise every example would silently delegate back to the
python kernel and the grid would prove nothing.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.detection.engine import detect_violations
from repro.detection.indexed import detect_stream
from repro.errors import RepairError
from repro.kernels import numpy_available
from repro.reasoning.consistency import is_consistent
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import repair

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = ("v0", "v1", "v2")

row = st.tuples(*(st.sampled_from(VALUES) for _ in ATTRIBUTES))
cell = st.one_of(st.sampled_from(VALUES), st.just("_"))

#: The detection methods whose hot loops go through the kernel layer, plus
#: the oracle as an extra reference point.  The parallel backend runs with
#: workers=1 (serial in-process path) so the property suite does not spin up
#: a pool per example.
DETECTION_METHODS = ("inmemory", "indexed", "parallel")

#: The repair engines whose detection layer is kernel-capable.
REPAIR_METHODS = ("indexed", "incremental", "parallel")

STORAGES = ("rows", "columnar")

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the numpy kernel needs the [fast] extra"
)


@contextmanager
def force_vectorised():
    """Disable the numpy kernel's small-input fallback for the duration.

    The fallback is a pure speed knob; forcing it off makes every example —
    however small Hypothesis draws it — run the real array code.
    """
    from repro.kernels import numpy_kernels

    previous = numpy_kernels.SMALL_INPUT_THRESHOLD
    numpy_kernels.SMALL_INPUT_THRESHOLD = 0
    try:
        yield
    finally:
        numpy_kernels.SMALL_INPUT_THRESHOLD = previous


@st.composite
def cfds(draw):
    n_lhs = draw(st.integers(min_value=1, max_value=2))
    lhs = list(draw(st.permutations(ATTRIBUTES)))[:n_lhs]
    remaining = [attr for attr in ATTRIBUTES if attr not in lhs]
    n_rhs = draw(st.integers(min_value=1, max_value=2))
    rhs = remaining[:n_rhs]
    patterns = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        pattern = {attr: draw(cell) for attr in lhs}
        pattern.update({attr: draw(cell) for attr in rhs})
        patterns.append(pattern)
    return CFD.build(lhs, rhs, patterns)


@st.composite
def relations(draw):
    rows = draw(st.lists(row, min_size=0, max_size=8))
    return Relation(Schema("r", ATTRIBUTES), rows)


def _detection_config(method, storage, kernel):
    if method == "parallel":
        return DetectionConfig(method=method, storage=storage, kernel=kernel, workers=1)
    return DetectionConfig(method=method, storage=storage, kernel=kernel)


def _repair_config(method, storage, kernel):
    if method == "parallel":
        return RepairConfig(
            method=method, storage=storage, kernel=kernel, workers=1,
            check_consistency=False,
        )
    return RepairConfig(
        method=method, storage=storage, kernel=kernel, check_consistency=False
    )


@requires_numpy
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_detection_agrees_across_kernels(relation, cfd_list):
    for method in DETECTION_METHODS:
        for storage in STORAGES:
            python_report = detect_violations(
                relation, cfd_list, config=_detection_config(method, storage, "python")
            )
            with force_vectorised():
                numpy_report = detect_violations(
                    relation,
                    cfd_list,
                    config=_detection_config(method, storage, "numpy"),
                )
            assert list(python_report.violations) == list(numpy_report.violations), (
                method,
                storage,
            )


@requires_numpy
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=2))
def test_repair_agrees_across_kernels(relation, cfd_list):
    if not is_consistent(cfd_list):
        return
    for method in REPAIR_METHODS:
        for storage in STORAGES:
            outcomes = {}
            for kernel in ("python", "numpy"):
                try:
                    if kernel == "numpy":
                        with force_vectorised():
                            outcomes[kernel] = repair(
                                relation,
                                cfd_list,
                                config=_repair_config(method, storage, kernel),
                            )
                    else:
                        outcomes[kernel] = repair(
                            relation,
                            cfd_list,
                            config=_repair_config(method, storage, kernel),
                        )
                except RepairError:
                    outcomes[kernel] = "no-progress"
            python_result, numpy_result = outcomes["python"], outcomes["numpy"]
            if python_result == "no-progress" or numpy_result == "no-progress":
                assert python_result == numpy_result, (method, storage)
                continue
            assert python_result.relation.rows == numpy_result.relation.rows, (
                method,
                storage,
            )
            assert python_result.changes == numpy_result.changes, (method, storage)
            assert python_result.clean == numpy_result.clean, (method, storage)
            assert python_result.total_cost == numpy_result.total_cost, (
                method,
                storage,
            )


@requires_numpy
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=2))
def test_streaming_detection_agrees_across_kernels(relation, cfd_list):
    python_report = detect_stream(
        relation.schema, iter(relation), cfd_list, chunk_size=3, kernel="python"
    )
    with force_vectorised():
        numpy_report = detect_stream(
            relation.schema, iter(relation), cfd_list, chunk_size=3, kernel="numpy"
        )
    assert list(python_report.violations) == list(numpy_report.violations)


@requires_numpy
def test_batched_repair_path_is_active():
    """Guard: numpy + columnar really takes the batched fixpoint.

    The hypothesis grid above would still pass if the batched path silently
    fell back to the dict-indexed reference mode (they are byte-identical by
    contract) — so pin the mode bit itself, then assert a deterministic
    repair through the batched primitives matches the reference exactly.
    """
    from repro.datagen.cust import cust_cfds, cust_relation
    from repro.kernels import use_kernel
    from repro.relation.columnar import ColumnStore
    from repro.repair.incremental import RepairState

    rows = cust_relation()
    store = ColumnStore.from_relation(rows)
    with force_vectorised(), use_kernel("numpy"):
        batched = RepairState(store.copy(), cust_cfds())
        assert batched.batched
    with use_kernel("python"):
        reference = RepairState(store.copy(), cust_cfds())
        assert not reference.batched  # no fused_repair_scan on the reference
    with use_kernel("numpy"):
        assert not RepairState(rows, cust_cfds()).batched  # rows storage
    assert list(batched.report().violations) == list(reference.report().violations)

    results = {}
    for kernel in ("python", "numpy"):
        with force_vectorised():
            results[kernel] = repair(
                rows, cust_cfds(), config=_repair_config("incremental", "columnar", kernel)
            )
    assert results["python"].changes == results["numpy"].changes
    assert results["python"].relation.rows == results["numpy"].relation.rows


def test_auto_kernel_repair_degrades_gracefully():
    """``kernel="auto"`` repairs identically with or without numpy installed.

    Not numpy-gated on purpose: in the no-numpy environment ``auto`` resolves
    to the python reference (and the batched fixpoint stays off), and the
    result must still be byte-identical to an explicit ``kernel="python"``
    run.  With numpy present the same assertion pins auto == python through
    the batched path.
    """
    from repro.datagen.cust import cust_cfds, cust_relation

    rows = cust_relation()
    auto = repair(
        rows, cust_cfds(), config=_repair_config("incremental", "columnar", "auto")
    )
    reference = repair(
        rows, cust_cfds(), config=_repair_config("incremental", "columnar", "python")
    )
    assert auto.changes == reference.changes
    assert auto.relation.rows == reference.relation.rows
    assert auto.total_cost == reference.total_cost
    assert auto.clean == reference.clean


def test_kernel_agreement_covers_every_columnar_builtin():
    """Guard: the method lists above cover every kernel-capable builtin."""
    from repro.registry import COLUMNAR_DETECTORS, COLUMNAR_REPAIRERS

    assert COLUMNAR_DETECTORS <= set(DETECTION_METHODS)
    assert COLUMNAR_REPAIRERS <= set(REPAIR_METHODS)
