"""Property-based equivalence of the row, columnar and mmap storage layers.

Three nets, per the columnar acceptance criteria:

* **round-trip** — a :class:`ColumnStore` driven through the same mutation
  and algebra calls as a row :class:`Relation` stays indistinguishable from
  it (insert/update/delete/project/select/group_by);
* **detection agreement** — for random relations and CFD sets, every
  detection method reports the identical violation sequence under
  ``storage="rows"``, ``storage="columnar"`` and ``storage="mmap"`` (the
  memory-mapped backing additionally swept across kernels, pinning the
  mmap × kernel × method grid of the out-of-core acceptance criteria);
* **repair agreement** — every repair engine produces the byte-identical
  repaired relation, change list and cost under every storage.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.detection.engine import detect_violations
from repro.errors import RepairError
from repro.kernels import numpy_available
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.reasoning.consistency import is_consistent
from repro.repair.heuristic import repair

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = ("v0", "v1", "v2")

row = st.tuples(*(st.sampled_from(VALUES) for _ in ATTRIBUTES))
cell = st.one_of(st.sampled_from(VALUES), st.just("_"))

#: Every built-in detection method exercised against both storages.  The
#: parallel backend runs with workers=1 (serial in-process path) so the
#: property suite does not spin up a pool per example.
DETECTION_METHODS = ("inmemory", "sql", "indexed", "parallel")

#: Every built-in repair engine exercised against both storages.
REPAIR_METHODS = ("scan", "indexed", "incremental", "parallel")

#: Kernels the mmap grid sweeps (the python reference always; numpy when
#: installed — the no-numpy CI job covers the raw-mmap fallback instead).
KERNELS = ("python", "numpy") if numpy_available() else ("python",)


@st.composite
def cfds(draw):
    n_lhs = draw(st.integers(min_value=1, max_value=2))
    lhs = list(draw(st.permutations(ATTRIBUTES)))[:n_lhs]
    remaining = [attr for attr in ATTRIBUTES if attr not in lhs]
    n_rhs = draw(st.integers(min_value=1, max_value=2))
    rhs = remaining[:n_rhs]
    patterns = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        pattern = {attr: draw(cell) for attr in lhs}
        pattern.update({attr: draw(cell) for attr in rhs})
        patterns.append(pattern)
    return CFD.build(lhs, rhs, patterns)


@st.composite
def relations(draw):
    rows = draw(st.lists(row, min_size=0, max_size=8))
    return Relation(Schema("r", ATTRIBUTES), rows)


def _detection_config(method, storage, kernel=None):
    if method == "parallel":
        return DetectionConfig(method=method, storage=storage, workers=1, kernel=kernel)
    return DetectionConfig(method=method, storage=storage, kernel=kernel)


def _repair_config(method, storage, kernel=None):
    if method == "parallel":
        return RepairConfig(
            method=method,
            storage=storage,
            workers=1,
            check_consistency=False,
            kernel=kernel,
        )
    return RepairConfig(
        method=method, storage=storage, check_consistency=False, kernel=kernel
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_detection_agrees_across_storages(relation, cfd_list):
    for method in DETECTION_METHODS:
        rows_report = detect_violations(
            relation, cfd_list, config=_detection_config(method, "rows")
        )
        columnar_report = detect_violations(
            relation, cfd_list, config=_detection_config(method, "columnar")
        )
        assert list(rows_report.violations) == list(columnar_report.violations), method
        for kernel in KERNELS:
            mmap_report = detect_violations(
                relation, cfd_list, config=_detection_config(method, "mmap", kernel)
            )
            assert list(rows_report.violations) == list(mmap_report.violations), (
                method,
                kernel,
            )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=2))
def test_repair_agrees_across_storages(relation, cfd_list):
    if not is_consistent(cfd_list):
        return
    grid = [("rows", None), ("columnar", None)]
    grid += [("mmap", kernel) for kernel in KERNELS]
    for method in REPAIR_METHODS:
        outcomes = {}
        for storage, kernel in grid:
            try:
                outcomes[(storage, kernel)] = repair(
                    relation, cfd_list, config=_repair_config(method, storage, kernel)
                )
            except RepairError:
                outcomes[(storage, kernel)] = "no-progress"
        baseline = outcomes[("rows", None)]
        for (storage, kernel), result in outcomes.items():
            if baseline == "no-progress" or result == "no-progress":
                assert baseline == result, (method, storage, kernel)
                continue
            assert baseline.relation.rows == result.relation.rows, (
                method,
                storage,
                kernel,
            )
            assert baseline.changes == result.changes, (method, storage, kernel)
            assert baseline.clean == result.clean, (method, storage, kernel)
            assert baseline.total_cost == result.total_cost, (method, storage, kernel)
            if isinstance(result.relation, MmapColumnStore):
                result.relation.release()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(row, min_size=0, max_size=10))
def test_construction_roundtrip_equivalence(rows):
    schema = Schema("r", ATTRIBUTES)
    plain = Relation(schema, rows)
    store = ColumnStore(schema, rows)
    assert store == plain
    assert store.rows == plain.rows
    assert list(store) == list(plain)
    for attribute in ATTRIBUTES:
        assert store.active_domain(attribute) == plain.active_domain(attribute)


@st.composite
def operations(draw):
    """A random mutation/algebra script applied to both storage layers."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        kind = draw(st.sampled_from(["insert", "update", "delete", "noop"]))
        ops.append(
            (
                kind,
                draw(row),
                draw(st.integers(min_value=0, max_value=30)),
                draw(st.sampled_from(ATTRIBUTES)),
                draw(st.sampled_from(VALUES)),
            )
        )
    return ops


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(row, min_size=1, max_size=6), operations())
def test_mutation_script_equivalence(rows, ops):
    schema = Schema("r", ATTRIBUTES)
    plain = Relation(schema, rows)
    store = ColumnStore(schema, rows)
    for kind, new_row, index, attribute, value in ops:
        if kind == "insert":
            assert store.insert(new_row) == plain.insert(new_row)
        elif kind == "update" and len(plain):
            position = index % len(plain)
            plain.update(position, attribute, value)
            store.update(position, attribute, value)
        elif kind == "delete" and len(plain):
            position = index % len(plain)
            assert store.delete(position) == plain.delete(position)
        assert store.version == plain.version
    assert store == plain
    if len(plain):
        assert store.group_by(["A", "B"]) == plain.group_by(["A", "B"])
        assert store.project(["B", "D"], distinct=True) == plain.project(
            ["B", "D"], distinct=True
        )
        selected_plain = plain.select(lambda r: r["A"] == "v0")
        selected_store = store.select(lambda r: r["A"] == "v0")
        assert selected_store == selected_plain


def test_storage_agreement_is_exercised_for_every_builtin():
    """Guard: the method lists above cover everything the registry ships."""
    from repro.registry import detector_names, repairer_names

    assert set(DETECTION_METHODS) == set(detector_names())
    assert set(REPAIR_METHODS) == set(repairer_names())
