"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import load_cfds, load_relation_csv, main
from repro.datagen.cust import cust_cfds, cust_relation
from repro.io.json_format import write_cfd_json
from repro.io.text_format import write_cfd_file


@pytest.fixture
def workspace(tmp_path):
    """A CSV of the cust instance plus the Figure 2 CFDs in both rule formats."""
    data_path = tmp_path / "cust.csv"
    cust_relation().to_csv(data_path)
    rules_path = tmp_path / "rules.cfd"
    write_cfd_file(rules_path, cust_cfds())
    json_rules_path = tmp_path / "rules.json"
    write_cfd_json(json_rules_path, cust_cfds())
    return {
        "dir": tmp_path,
        "data": str(data_path),
        "rules": str(rules_path),
        "json_rules": str(json_rules_path),
    }


class TestLoaders:
    def test_load_relation_csv(self, workspace):
        relation = load_relation_csv(workspace["data"])
        assert len(relation) == 6
        assert relation.schema.names == cust_relation().schema.names

    def test_load_relation_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_relation_csv(str(tmp_path / "nope.csv"))

    def test_load_cfds_text_and_json(self, workspace):
        assert load_cfds(workspace["rules"]) == cust_cfds()
        assert load_cfds(workspace["json_rules"]) == cust_cfds()


class TestDetectCommand:
    def test_detect_finds_violations_and_returns_1(self, workspace, capsys):
        code = main(["detect", "--data", workspace["data"], "--cfds", workspace["rules"]])
        output = capsys.readouterr().out
        assert code == 1
        assert "violations" in output

    def test_detect_writes_json_report(self, workspace, capsys):
        report_path = workspace["dir"] / "report.json"
        main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(report_path), "--quiet",
        ])
        payload = json.loads(report_path.read_text())
        assert sorted(payload["violating_tuples"]) == [0, 1, 2, 3]

    def test_detect_inmemory_method(self, workspace):
        code = main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--method", "inmemory", "--quiet",
        ])
        assert code == 1

    def test_detect_indexed_method(self, workspace, tmp_path):
        report_path = tmp_path / "indexed.json"
        code = main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--method", "indexed", "--output", str(report_path), "--quiet",
        ])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert sorted(payload["violating_tuples"]) == [0, 1, 2, 3]

    def test_detect_clean_data_returns_0(self, workspace, tmp_path, capsys):
        clean_rules = tmp_path / "clean.cfd"
        clean_rules.write_text("cfd phi1 on cust: [CC = 44, ZIP] -> [STR]\n")
        code = main(["detect", "--data", workspace["data"], "--cfds", str(clean_rules)])
        assert code == 0

    def test_detect_missing_file_returns_2(self, workspace, capsys):
        code = main(["detect", "--data", "missing.csv", "--cfds", workspace["rules"]])
        assert code == 2


class TestRepairCommand:
    def test_repair_writes_clean_csv(self, workspace, capsys):
        output_path = workspace["dir"] / "repaired.csv"
        code = main([
            "repair", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(output_path), "--changes",
        ])
        assert code == 0
        assert output_path.exists()
        # the repaired file passes detection
        code = main(["detect", "--data", str(output_path), "--cfds", workspace["rules"], "--quiet"])
        assert code == 0


class TestCleanCommand:
    def test_clean_writes_verified_csv_and_audit(self, workspace, capsys):
        output_path = workspace["dir"] / "clean.csv"
        audit_path = workspace["dir"] / "audit.json"
        code = main([
            "clean", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(output_path), "--audit", str(audit_path),
        ])
        assert code == 0
        assert "backends" in capsys.readouterr().out
        # the cleaned file passes detection
        assert main(["detect", "--data", str(output_path), "--cfds", workspace["rules"], "--quiet"]) == 0
        audit = json.loads(audit_path.read_text())
        assert audit["clean"] is True
        assert audit["initial_violations"] == 4
        assert audit["final_violations"] == 0
        assert audit["cell_changes"]
        assert audit["pass_violation_counts"][0] == 4

    def test_clean_with_pinned_backends(self, workspace, tmp_path):
        output_path = tmp_path / "clean.csv"
        code = main([
            "clean", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(output_path),
            "--detect-method", "indexed", "--repair-method", "incremental",
        ])
        assert code == 0

    def test_clean_with_parallel_backends_and_workers(self, workspace, tmp_path, capsys):
        output_path = tmp_path / "clean.csv"
        code = main([
            "clean", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(output_path),
            "--detect-method", "parallel", "--repair-method", "parallel",
            "--workers", "2", "--shard-count", "3",
        ])
        assert code == 0
        assert "repair=parallel" in capsys.readouterr().out
        assert main(["detect", "--data", str(output_path), "--cfds", workspace["rules"], "--quiet"]) == 0

    def test_workers_with_serial_backend_is_a_config_error(self, workspace, tmp_path, capsys):
        code = main([
            "clean", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(tmp_path / "clean.csv"),
            "--detect-method", "indexed", "--repair-method", "incremental",
            "--workers", "2",
        ])
        assert code == 2
        assert "parallel backend" in capsys.readouterr().err

    def test_clean_from_sqlite(self, workspace, tmp_path, capsys):
        import sqlite3

        from repro.datagen.cust import cust_relation

        relation = cust_relation()
        db_path = tmp_path / "cust.db"
        connection = sqlite3.connect(db_path)
        columns = ", ".join(f'"{name}" TEXT' for name in relation.schema.names)
        connection.execute(f"CREATE TABLE cust ({columns})")
        connection.executemany(
            f"INSERT INTO cust VALUES ({', '.join('?' * len(relation.schema))})",
            list(relation.rows),
        )
        connection.commit()
        connection.close()
        output_path = tmp_path / "clean.csv"
        code = main([
            "clean", "--sqlite", str(db_path), "--table", "cust",
            "--cfds", workspace["rules"], "--output", str(output_path),
        ])
        assert code == 0
        assert main(["detect", "--data", str(output_path), "--cfds", workspace["rules"], "--quiet"]) == 0

    def test_clean_without_data_is_a_usage_error(self, workspace, capsys):
        code = main(["clean", "--cfds", workspace["rules"]])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_data_and_sqlite_together_rejected(self, workspace, tmp_path, capsys):
        code = main([
            "clean", "--data", workspace["data"], "--sqlite", str(tmp_path / "x.db"),
            "--cfds", workspace["rules"],
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestGenerateCommand:
    def test_generate_cust_with_rules(self, tmp_path, capsys):
        data_path = tmp_path / "cust.csv"
        rules_path = tmp_path / "rules.cfd"
        code = main([
            "generate", "--dataset", "cust",
            "--output", str(data_path), "--rules", str(rules_path),
        ])
        assert code == 0
        assert len(load_relation_csv(str(data_path))) == 6
        assert len(load_cfds(str(rules_path))) == 3

    def test_generate_tax_then_clean_roundtrip(self, tmp_path):
        data_path = tmp_path / "tax.csv"
        rules_path = tmp_path / "tax.cfd"
        clean_path = tmp_path / "clean.csv"
        assert main([
            "generate", "--dataset", "tax", "--size", "300", "--noise", "0.05",
            "--seed", "7", "--output", str(data_path), "--rules", str(rules_path),
        ]) == 0
        assert len(load_relation_csv(str(data_path))) == 300
        assert main([
            "clean", "--data", str(data_path), "--cfds", str(rules_path),
            "--output", str(clean_path),
        ]) == 0
        assert main(["detect", "--data", str(clean_path), "--cfds", str(rules_path),
                     "--method", "inmemory", "--quiet"]) == 0


class TestBenchCommand:
    def test_bench_rejects_unknown_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "does-not-exist"])


class TestDiscoverCommand:
    def test_discover_prints_rules(self, workspace, capsys):
        code = main([
            "discover", "--data", workspace["data"], "--min-support", "2", "--max-lhs", "1",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "Discovered" in output

    def test_discover_writes_rule_file(self, workspace, capsys):
        mined = workspace["dir"] / "mined.cfd"
        main([
            "discover", "--data", workspace["data"], "--min-support", "2",
            "--max-lhs", "1", "--output", str(mined),
        ])
        assert load_cfds(str(mined))

    def test_discover_json_output(self, workspace, capsys):
        mined = workspace["dir"] / "mined.json"
        main([
            "discover", "--data", workspace["data"], "--min-support", "2",
            "--max-lhs", "1", "--output", str(mined), "--json",
        ])
        assert json.loads(mined.read_text())["cfds"]


class TestCheckAndShowCommands:
    def test_check_consistent_rules(self, workspace, capsys):
        code = main(["check", "--cfds", workspace["rules"], "--mincover"])
        output = capsys.readouterr().out
        assert code == 0
        assert "consistent: True" in output

    def test_check_inconsistent_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.cfd"
        bad.write_text("[A] -> [B = b]\n[A] -> [B = c]\n")
        code = main(["check", "--cfds", str(bad)])
        assert code == 1

    def test_show_text(self, workspace, capsys):
        code = main(["show", "--cfds", workspace["rules"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "phi2" in output

    def test_show_json(self, workspace, capsys):
        code = main(["show", "--cfds", workspace["json_rules"], "--json"])
        output = capsys.readouterr().out
        assert code == 0
        assert json.loads(output)["cfds"]


class TestLintCommand:
    @pytest.fixture
    def bad_rules(self, tmp_path):
        bad = tmp_path / "bad.cfd"
        bad.write_text("[A] -> [B = b]\n[A] -> [B = c]\n")
        return str(bad)

    def test_lint_clean_rules_exit_0(self, workspace, capsys):
        code = main(["lint", "--cfds", workspace["rules"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in output

    def test_lint_inconsistent_rules_exit_1(self, bad_rules, capsys):
        code = main(["lint", "--cfds", bad_rules])
        output = capsys.readouterr().out
        assert code == 1
        assert "CFD001" in output

    def test_lint_json_payload(self, bad_rules, capsys):
        code = main(["lint", "--cfds", bad_rules, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert "CFD001" in payload["summary"]["codes"]
        witness = next(
            d for d in payload["diagnostics"] if d["code"] == "CFD001"
        )["witness"]
        assert witness["core_size"] == 2

    def test_lint_fast_skips_deep_checks(self, workspace, capsys):
        code = main(["lint", "--cfds", workspace["rules"], "--fast"])
        output = capsys.readouterr().out
        assert code == 0
        assert "(deep implication checks skipped)" in output

    def test_lint_with_data_enables_schema_checks(self, workspace, tmp_path, capsys):
        ghost = tmp_path / "ghost.cfd"
        ghost.write_text("cfd ghost on cust: [NOPE] -> [STR]\n")
        code = main(["lint", "--cfds", str(ghost), "--data", workspace["data"]])
        output = capsys.readouterr().out
        assert code == 1
        assert "CFD007" in output

    def test_lint_optimize_writes_an_equivalent_cover(self, tmp_path, capsys):
        from repro.core.cfd import CFD
        from repro.reasoning.implication import equivalent

        dup = tmp_path / "dup.cfd"
        write_cfd_file(dup, [
            CFD.build(["ZIP"], ["ST"], [["_", "_"]], name="twin1"),
            CFD.build(["ZIP"], ["ST"], [["_", "_"]], name="twin2"),
        ])
        out = tmp_path / "minimal.cfd"
        code = main(["lint", "--cfds", str(dup), "--optimize", str(out)])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "Wrote minimal cover" in stdout
        cover = load_cfds(str(out))
        assert equivalent(cover, load_cfds(str(dup)))

    def test_lint_optimize_refuses_inconsistent_rules(self, bad_rules, tmp_path, capsys):
        out = tmp_path / "minimal.cfd"
        code = main(["lint", "--cfds", bad_rules, "--optimize", str(out)])
        captured = capsys.readouterr()
        assert code == 1
        assert not out.exists()
        assert "cannot optimize" in captured.err

    def test_lint_json_stdout_stays_parseable_with_optimize(
        self, workspace, tmp_path, capsys
    ):
        out = tmp_path / "minimal.cfd"
        code = main([
            "lint", "--cfds", workspace["rules"], "--optimize", str(out), "--json",
        ])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)  # status line went to stderr
        assert payload["optimized_cfds"] >= 1
        assert "Wrote minimal cover" in captured.err

    def test_lint_parallel_method_escalates_hazards(self, tmp_path, capsys):
        from repro.core.cfd import CFD

        rules = tmp_path / "chain.cfd"
        write_cfd_file(rules, [
            CFD.build(["A"], ["B"], [["_", "b"]], name="phi1"),
            CFD.build(["B"], ["C"], [["_", "c"]], name="phi2"),
        ])
        main(["lint", "--cfds", str(rules), "--fast", "--json"])
        default = json.loads(capsys.readouterr().out)
        main([
            "lint", "--cfds", str(rules), "--fast", "--json",
            "--repair-method", "parallel",
        ])
        parallel = json.loads(capsys.readouterr().out)
        assert default["summary"]["warnings"] == 0
        assert parallel["summary"]["warnings"] >= 1
