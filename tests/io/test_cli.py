"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import load_cfds, load_relation_csv, main
from repro.datagen.cust import cust_cfds, cust_relation
from repro.io.json_format import write_cfd_json
from repro.io.text_format import write_cfd_file


@pytest.fixture
def workspace(tmp_path):
    """A CSV of the cust instance plus the Figure 2 CFDs in both rule formats."""
    data_path = tmp_path / "cust.csv"
    cust_relation().to_csv(data_path)
    rules_path = tmp_path / "rules.cfd"
    write_cfd_file(rules_path, cust_cfds())
    json_rules_path = tmp_path / "rules.json"
    write_cfd_json(json_rules_path, cust_cfds())
    return {
        "dir": tmp_path,
        "data": str(data_path),
        "rules": str(rules_path),
        "json_rules": str(json_rules_path),
    }


class TestLoaders:
    def test_load_relation_csv(self, workspace):
        relation = load_relation_csv(workspace["data"])
        assert len(relation) == 6
        assert relation.schema.names == cust_relation().schema.names

    def test_load_relation_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_relation_csv(str(tmp_path / "nope.csv"))

    def test_load_cfds_text_and_json(self, workspace):
        assert load_cfds(workspace["rules"]) == cust_cfds()
        assert load_cfds(workspace["json_rules"]) == cust_cfds()


class TestDetectCommand:
    def test_detect_finds_violations_and_returns_1(self, workspace, capsys):
        code = main(["detect", "--data", workspace["data"], "--cfds", workspace["rules"]])
        output = capsys.readouterr().out
        assert code == 1
        assert "violations" in output

    def test_detect_writes_json_report(self, workspace, capsys):
        report_path = workspace["dir"] / "report.json"
        main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(report_path), "--quiet",
        ])
        payload = json.loads(report_path.read_text())
        assert sorted(payload["violating_tuples"]) == [0, 1, 2, 3]

    def test_detect_inmemory_method(self, workspace):
        code = main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--method", "inmemory", "--quiet",
        ])
        assert code == 1

    def test_detect_indexed_method(self, workspace, tmp_path):
        report_path = tmp_path / "indexed.json"
        code = main([
            "detect", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--method", "indexed", "--output", str(report_path), "--quiet",
        ])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert sorted(payload["violating_tuples"]) == [0, 1, 2, 3]

    def test_detect_clean_data_returns_0(self, workspace, tmp_path, capsys):
        clean_rules = tmp_path / "clean.cfd"
        clean_rules.write_text("cfd phi1 on cust: [CC = 44, ZIP] -> [STR]\n")
        code = main(["detect", "--data", workspace["data"], "--cfds", str(clean_rules)])
        assert code == 0

    def test_detect_missing_file_returns_2(self, workspace, capsys):
        code = main(["detect", "--data", "missing.csv", "--cfds", workspace["rules"]])
        assert code == 2


class TestRepairCommand:
    def test_repair_writes_clean_csv(self, workspace, capsys):
        output_path = workspace["dir"] / "repaired.csv"
        code = main([
            "repair", "--data", workspace["data"], "--cfds", workspace["rules"],
            "--output", str(output_path), "--changes",
        ])
        assert code == 0
        assert output_path.exists()
        # the repaired file passes detection
        code = main(["detect", "--data", str(output_path), "--cfds", workspace["rules"], "--quiet"])
        assert code == 0


class TestDiscoverCommand:
    def test_discover_prints_rules(self, workspace, capsys):
        code = main([
            "discover", "--data", workspace["data"], "--min-support", "2", "--max-lhs", "1",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "Discovered" in output

    def test_discover_writes_rule_file(self, workspace, capsys):
        mined = workspace["dir"] / "mined.cfd"
        main([
            "discover", "--data", workspace["data"], "--min-support", "2",
            "--max-lhs", "1", "--output", str(mined),
        ])
        assert load_cfds(str(mined))

    def test_discover_json_output(self, workspace, capsys):
        mined = workspace["dir"] / "mined.json"
        main([
            "discover", "--data", workspace["data"], "--min-support", "2",
            "--max-lhs", "1", "--output", str(mined), "--json",
        ])
        assert json.loads(mined.read_text())["cfds"]


class TestCheckAndShowCommands:
    def test_check_consistent_rules(self, workspace, capsys):
        code = main(["check", "--cfds", workspace["rules"], "--mincover"])
        output = capsys.readouterr().out
        assert code == 0
        assert "consistent: True" in output

    def test_check_inconsistent_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.cfd"
        bad.write_text("[A] -> [B = b]\n[A] -> [B = c]\n")
        code = main(["check", "--cfds", str(bad)])
        assert code == 1

    def test_show_text(self, workspace, capsys):
        code = main(["show", "--cfds", workspace["rules"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "phi2" in output

    def test_show_json(self, workspace, capsys):
        code = main(["show", "--cfds", workspace["json_rules"], "--json"])
        output = capsys.readouterr().out
        assert code == 0
        assert json.loads(output)["cfds"]
