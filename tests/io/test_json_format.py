"""Tests for the CFD JSON format."""

import json

import pytest

from repro.core.cfd import CFD
from repro.datagen.cust import cust_cfds, phi2
from repro.errors import ParseError
from repro.io.json_format import (
    cfd_to_dict,
    cfds_from_json,
    cfds_to_json,
    dict_to_cfd,
    read_cfd_json,
    write_cfd_json,
)


class TestEncoding:
    def test_dict_shape(self):
        payload = cfd_to_dict(phi2())
        assert payload["name"] == "phi2"
        assert payload["lhs"] == ["CC", "AC", "PN"]
        assert payload["relation"] == "cust"
        assert len(payload["patterns"]) == 3

    def test_wildcards_encoded_as_marker(self):
        payload = cfd_to_dict(phi2())
        assert payload["patterns"][0]["lhs"]["PN"] == "_"
        assert payload["patterns"][0]["rhs"]["CT"] == "MH"

    def test_dontcare_encoded(self):
        cfd = CFD.build(["A"], ["B"], [["@", "_"]])
        payload = cfd_to_dict(cfd)
        assert payload["patterns"][0]["lhs"]["A"] == "@"

    def test_custom_markers(self):
        cfd = CFD.build(["A"], ["B"], [["_", "b"]])
        payload = cfd_to_dict(cfd, wildcard="<any>")
        assert payload["patterns"][0]["lhs"]["A"] == "<any>"

    def test_json_document_is_valid_json(self):
        document = json.loads(cfds_to_json(cust_cfds()))
        assert len(document["cfds"]) == 3


class TestDecoding:
    def test_round_trip(self):
        for cfd in cust_cfds():
            assert dict_to_cfd(cfd_to_dict(cfd)) == cfd

    def test_round_trip_through_text(self):
        loaded = cfds_from_json(cfds_to_json(cust_cfds()))
        assert loaded == cust_cfds()

    def test_non_string_constants_survive(self):
        cfd = CFD.build(["A"], ["B"], [[1, 2.5]], name="numeric")
        assert cfds_from_json(cfds_to_json([cfd])) == [cfd]

    def test_bare_list_accepted(self):
        payloads = [cfd_to_dict(cfd) for cfd in cust_cfds()]
        assert len(cfds_from_json(json.dumps(payloads))) == 3

    def test_literal_underscore_constant_with_custom_marker(self):
        """With a custom wildcard marker, a genuine "_" constant is representable."""
        from repro.core.pattern import PatternValue
        from repro.core.tableau import PatternTableau, PatternTuple

        tableau = PatternTableau(
            ("A",), ("B",),
            [PatternTuple({"A": PatternValue.constant("_")}, {"B": "x"})],
        )
        literal = CFD(("A",), ("B",), tableau, name="literal_underscore")
        payload = cfd_to_dict(literal, wildcard="<any>")
        assert payload["patterns"][0]["lhs"]["A"] == "_"
        rebuilt = dict_to_cfd(payload, wildcard="<any>")
        assert rebuilt.tableau[0].lhs_cell("A").is_constant
        assert rebuilt == literal


class TestErrors:
    def test_invalid_json_rejected(self):
        with pytest.raises(ParseError):
            cfds_from_json("{not json")

    def test_missing_cfds_key(self):
        with pytest.raises(ParseError):
            cfds_from_json('{"rules": []}')

    def test_wrong_top_level_type(self):
        with pytest.raises(ParseError):
            cfds_from_json('"just a string"')

    def test_missing_pattern_fields(self):
        with pytest.raises(ParseError):
            dict_to_cfd({"lhs": ["A"], "rhs": ["B"], "patterns": [{"lhs": {}}]})

    def test_empty_patterns_rejected(self):
        with pytest.raises(ParseError):
            dict_to_cfd({"lhs": ["A"], "rhs": ["B"], "patterns": []})


class TestFiles:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        write_cfd_json(path, cust_cfds())
        assert read_cfd_json(path) == cust_cfds()
