"""RowSource adapters: relation, CSV, SQLite, iterables, and coercion."""

import sqlite3

import pytest

from repro.datagen.cust import cust_relation, cust_schema
from repro.errors import ReproError
from repro.io.sources import (
    CSVSource,
    IterableSource,
    RelationSource,
    RowSource,
    SQLiteSource,
    as_source,
)
from repro.relation.schema import Schema


@pytest.fixture
def cust():
    return cust_relation()


class TestRelationSource:
    def test_schema_and_rows(self, cust):
        source = RelationSource(cust)
        assert source.schema is cust.schema
        assert list(source) == list(cust.rows)

    def test_to_relation_passes_through(self, cust):
        assert RelationSource(cust).to_relation() is cust

    def test_describe(self, cust):
        assert "cust" in RelationSource(cust).describe()


class TestIterableSource:
    def test_positional_rows(self, cust):
        source = IterableSource(cust.schema, list(cust.rows))
        assert source.to_relation() == cust

    def test_mapping_rows(self, cust):
        source = IterableSource(cust.schema, cust.iter_dicts())
        assert source.to_relation() == cust

    def test_generator_is_consumed_lazily(self):
        schema = Schema("r", ["A"])
        consumed = []

        def rows():
            for value in ("x", "y"):
                consumed.append(value)
                yield (value,)

        source = IterableSource(schema, rows())
        assert consumed == []
        assert list(source) == [("x",), ("y",)]
        assert consumed == ["x", "y"]


class TestCSVSource:
    def test_roundtrip(self, cust, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        source = CSVSource(path)
        assert source.schema.names == cust.schema.names
        assert source.to_relation().rows == cust.rows

    def test_schema_name_defaults_to_the_file_stem(self, cust, tmp_path):
        path = tmp_path / "customers.csv"
        cust.to_csv(path)
        assert CSVSource(path).schema.name == "customers"

    def test_explicit_schema_parses_cells(self, cust, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        relation = CSVSource(path, schema=cust_schema()).to_relation()
        assert relation == cust

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("X,Y\n1,2\n")
        with pytest.raises(ReproError):
            list(CSVSource(path, schema=Schema("r", ["A", "B"])))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ReproError):
            CSVSource(path).schema

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\n1,2\n3\n")
        with pytest.raises(ReproError) as excinfo:
            list(CSVSource(path))
        assert "row 3" in str(excinfo.value)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CSVSource(tmp_path / "nope.csv").schema

    def test_streams_twice(self, cust, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        source = CSVSource(path)
        assert list(source) == list(source)


class TestSQLiteSource:
    @pytest.fixture
    def database(self, cust, tmp_path):
        path = tmp_path / "cust.db"
        connection = sqlite3.connect(path)
        columns = ", ".join(f'"{name}" TEXT' for name in cust.schema.names)
        connection.execute(f"CREATE TABLE cust ({columns})")
        connection.executemany(
            f"INSERT INTO cust VALUES ({', '.join('?' * len(cust.schema))})",
            list(cust.rows),
        )
        connection.commit()
        connection.close()
        return path

    def test_schema_from_pragma(self, database, cust):
        source = SQLiteSource(database, "cust")
        assert source.schema.names == cust.schema.names

    def test_rows(self, database, cust):
        assert SQLiteSource(database, "cust").to_relation().rows == cust.rows

    def test_open_connection_is_reused_and_left_open(self, database, cust):
        connection = sqlite3.connect(database)
        source = SQLiteSource(connection, "cust")
        assert len(source.to_relation()) == len(cust)
        connection.execute("SELECT 1")  # still open
        connection.close()

    def test_missing_table_rejected(self, database):
        with pytest.raises(ReproError):
            SQLiteSource(database, "nope").schema

    def test_unsafe_table_name_rejected(self, database):
        with pytest.raises(ReproError):
            SQLiteSource(database, 'cust"; DROP TABLE cust; --')


class TestAsSource:
    def test_row_source_passes_through(self, cust):
        source = RelationSource(cust)
        assert as_source(source) is source

    def test_relation(self, cust):
        assert isinstance(as_source(cust), RelationSource)

    def test_path_and_string(self, cust, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        assert isinstance(as_source(path), CSVSource)
        assert isinstance(as_source(str(path)), CSVSource)

    def test_iterable_requires_schema(self, cust):
        rows = list(cust.rows)
        with pytest.raises(ReproError):
            as_source(rows)
        source = as_source(rows, schema=cust.schema)
        assert isinstance(source, IterableSource)
        assert source.to_relation() == cust

    def test_unsupported_type_rejected(self):
        with pytest.raises(ReproError):
            as_source(42)

    def test_all_adapters_are_row_sources(self):
        for adapter in (RelationSource, IterableSource, CSVSource, SQLiteSource):
            assert issubclass(adapter, RowSource)
