"""Tests for the CFD text format."""

import pytest

from repro.core.cfd import CFD
from repro.datagen.cust import cust_cfds, phi2
from repro.errors import ParseError
from repro.io.text_format import (
    format_cfd,
    format_cfds,
    parse_cfd,
    parse_cfds,
    read_cfd_file,
    write_cfd_file,
)


class TestSingleLineForm:
    def test_minimal_form(self):
        cfd = parse_cfd("[ZIP] -> [ST]")
        assert cfd.lhs == ("ZIP",)
        assert cfd.rhs == ("ST",)
        assert cfd.is_standard_fd()

    def test_constants_in_header(self):
        cfd = parse_cfd("cfd phi1 on cust: [CC = 44, ZIP] -> [STR]")
        assert cfd.name == "phi1"
        assert cfd.tableau[0].lhs_cell("CC").value == "44"
        assert cfd.tableau[0].lhs_cell("ZIP").is_wildcard
        assert cfd.tableau[0].rhs_cell("STR").is_wildcard

    def test_rhs_constant(self):
        cfd = parse_cfd("[CC = 01, AC = 215] -> [CT = PHI]")
        assert cfd.tableau[0].rhs_cell("CT").value == "PHI"

    def test_quoted_constant_with_spaces_and_commas(self):
        cfd = parse_cfd('[CT = "New York, NY"] -> [ST = NY]')
        assert cfd.tableau[0].lhs_cell("CT").value == "New York, NY"

    def test_empty_lhs(self):
        cfd = parse_cfd("[] -> [B = b]")
        assert cfd.lhs == ()
        assert cfd.tableau[0].rhs_cell("B").value == "b"

    def test_dontcare_marker(self):
        cfd = parse_cfd("[A = @, B] -> [C]")
        assert cfd.tableau[0].lhs_cell("A").is_dontcare

    def test_name_without_relation(self):
        cfd = parse_cfd("cfd myrule: [A] -> [B]")
        assert cfd.name == "myrule"

    def test_anonymous_cfds_get_numbered_names(self):
        cfds = parse_cfds("[A] -> [B]\n[B] -> [C]")
        assert [cfd.name for cfd in cfds] == ["cfd_1", "cfd_2"]


class TestTableauBlockForm:
    PHI2_TEXT = """
    # phi2, the Figure 2(b) CFD
    cfd phi2 on cust: [CC, AC, PN] -> [STR, CT, ZIP] {
        01, 908, _ | _, MH, _
        01, 212, _ | _, NYC, _
        _,  _,   _ | _, _,   _
    }
    """

    def test_parse_phi2(self):
        cfd = parse_cfd(self.PHI2_TEXT)
        assert cfd == phi2()

    def test_comments_and_blank_lines_ignored(self):
        text = "# leading comment\n\n[A] -> [B]  # trailing comment\n"
        assert len(parse_cfds(text)) == 1

    def test_row_width_validated(self):
        text = "[A, B] -> [C] {\n a | c\n}"
        with pytest.raises(ParseError):
            parse_cfds(text)

    def test_missing_separator_rejected(self):
        text = "[A] -> [C] {\n a, c\n}"
        with pytest.raises(ParseError):
            parse_cfds(text)

    def test_unterminated_block_rejected(self):
        text = "[A] -> [C] {\n a | c\n"
        with pytest.raises(ParseError):
            parse_cfds(text)

    def test_empty_block_rejected(self):
        text = "[A] -> [C] {\n}"
        with pytest.raises(ParseError):
            parse_cfds(text)

    def test_multiple_definitions(self):
        text = "[A] -> [B]\n\ncfd two on r: [B] -> [C] {\n b1 | c1\n b2 | c2\n}"
        cfds = parse_cfds(text)
        assert len(cfds) == 2
        assert len(cfds[1].tableau) == 2


class TestErrors:
    def test_garbage_header(self):
        with pytest.raises(ParseError):
            parse_cfds("this is not a CFD")

    def test_missing_rhs(self):
        with pytest.raises(ParseError):
            parse_cfds("[A] -> []")

    def test_parse_cfd_requires_exactly_one(self):
        with pytest.raises(ParseError):
            parse_cfd("[A] -> [B]\n[B] -> [C]")

    def test_empty_attribute_item(self):
        with pytest.raises(ParseError):
            parse_cfds("[A, ] -> [B]")


class TestRoundTrip:
    @pytest.mark.parametrize("cfd", cust_cfds(), ids=lambda cfd: cfd.name)
    def test_cust_cfds_round_trip(self, cfd):
        assert parse_cfd(format_cfd(cfd)) == cfd

    def test_round_trip_preserves_names(self):
        original = CFD.build(["A"], ["B"], [["a", "b"], ["_", "_"]], name="rule7")
        assert parse_cfd(format_cfd(original)).name == "rule7"

    def test_round_trip_with_awkward_constants(self):
        original = CFD.build(["CT"], ["ST"], [["New York, NY", "NY"]], name="quoted")
        assert parse_cfd(format_cfd(original)) == original

    def test_format_cfds_joins_definitions(self):
        text = format_cfds(cust_cfds())
        assert len(parse_cfds(text)) == 3

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "rules.cfd"
        write_cfd_file(path, cust_cfds())
        loaded = read_cfd_file(path)
        assert loaded == cust_cfds()

    def test_single_pattern_formats_on_one_line(self):
        cfd = CFD.build(["CC", "ZIP"], ["STR"], [["44", "_", "_"]], name="phi1")
        assert "\n" not in format_cfd(cfd)

    def test_multi_pattern_formats_as_block(self):
        assert "{" in format_cfd(phi2())
