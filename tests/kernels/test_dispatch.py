"""Unit tests for the kernel dispatch layer (resolution, env, activation)."""

from __future__ import annotations

import pytest

import repro.kernels as kernels
from repro.config import DetectionConfig, RepairConfig, kernel_from_env, validate_kernel
from repro.errors import ConfigError
from repro.kernels import (
    active_kernel,
    get_kernel,
    kernel_names,
    resolve_kernel_name,
    use_kernel,
)


def test_validate_kernel_accepts_known_names():
    for name in ("python", "numpy", "auto", None):
        validate_kernel(name)


def test_validate_kernel_rejects_garbage():
    with pytest.raises(ConfigError):
        validate_kernel("fortran")


def test_configs_carry_and_validate_kernel():
    assert DetectionConfig(kernel="python").kernel == "python"
    assert RepairConfig(kernel="auto").summary()["kernel"] == "auto"
    with pytest.raises(ConfigError):
        DetectionConfig(kernel="fortran")
    with pytest.raises(ConfigError):
        RepairConfig(kernel="fortran")


def test_effective_kernel_defers_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    assert DetectionConfig().effective_kernel == "python"
    assert DetectionConfig(kernel="auto").effective_kernel == "auto"
    monkeypatch.delenv("REPRO_KERNEL")
    assert RepairConfig().effective_kernel == "auto"


def test_kernel_from_env_is_forgiving(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
    assert kernel_from_env() == "auto"
    monkeypatch.setenv("REPRO_KERNEL", "  NumPy ")
    assert kernel_from_env() == "numpy"


def test_resolve_unknown_kernel_raises():
    with pytest.raises(ConfigError):
        resolve_kernel_name("fortran")


def test_auto_degrades_cleanly_without_numpy(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_available", False)
    assert resolve_kernel_name("auto") == "python"
    assert kernel_names() == ("python",)
    # An *explicit* numpy request without numpy is an error, not a silent
    # substitution.
    with pytest.raises(ConfigError, match="fast"):
        resolve_kernel_name("numpy")


def test_get_kernel_returns_named_singletons():
    assert get_kernel("python").name == "python"
    if kernels.numpy_available():
        assert get_kernel("numpy").name == "numpy"


def test_use_kernel_activates_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    assert active_kernel().name == "python"
    with use_kernel("python") as outer:
        assert active_kernel() is outer
        if kernels.numpy_available():
            with use_kernel("numpy") as inner:
                assert active_kernel() is inner
                assert inner.name == "numpy"
            assert active_kernel() is outer
    assert active_kernel().name == "python"


def test_use_kernel_restores_on_error():
    before = active_kernel()
    with pytest.raises(RuntimeError):
        with use_kernel("python"):
            raise RuntimeError("boom")
    assert active_kernel().name == before.name
