"""Edge-case unit suite for the kernel layer, run against both kernels.

Each case is the kind of input the vectorised kernels are most likely to get
wrong — empty windows, degenerate group shapes, columns that were never
dictionary-encoded, values numpy cannot represent natively — asserted
byte-identical between ``kernel="python"`` and ``kernel="numpy"`` at every
level the kernels surface: the raw primitives, ``ColumnStore.group_indices``
and full detection/repair.

The numpy kernel's small-input fallback is disabled throughout (these inputs
are all tiny by construction; with the fallback active the numpy column
would never run its own code).
"""

from __future__ import annotations

from array import array

import pytest

from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.detection.engine import detect_violations
from repro.kernels import get_kernel, numpy_available, use_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import repair

KERNELS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="the numpy kernel needs the [fast] extra"
        ),
    ),
]


@pytest.fixture(autouse=True)
def no_small_input_fallback():
    """Force the numpy kernel's vectorised paths even on tiny inputs."""
    if not numpy_available():
        yield
        return
    from repro.kernels import numpy_kernels

    previous = numpy_kernels.SMALL_INPUT_THRESHOLD
    numpy_kernels.SMALL_INPUT_THRESHOLD = 0
    yield
    numpy_kernels.SMALL_INPUT_THRESHOLD = previous


def reference(primitive, *args, **kwargs):
    """The python kernel's answer, normalised to a comparable list."""
    result = getattr(get_kernel("python"), primitive)(*args, **kwargs)
    return list(result) if primitive != "codes_disagree" else result


def answer(kernel, primitive, *args, **kwargs):
    result = getattr(get_kernel(kernel), primitive)(*args, **kwargs)
    return list(result) if primitive != "codes_disagree" else result


SCHEMA = Schema("r", ["A", "B", "C"])

ZIP_CFD = CFD.build(["A"], ["B"], [{"A": "_", "B": "_"}])
CONST_CFD = CFD.build(["A"], ["B"], [{"A": "x", "B": "y"}])


# ---------------------------------------------------------------------------
# empty relation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_empty_relation(kernel):
    empty = array("i")
    assert answer(kernel, "group_codes", [empty], 0, 0, sizes=[0]) == []
    assert answer(kernel, "group_codes", [empty, empty], 0, 0) == []
    assert answer(kernel, "group_projections", [empty], []) == []
    assert answer(kernel, "constant_mismatches", empty, [], 0) == []
    assert answer(kernel, "variable_violation_groups", [empty], [empty], 0, 0) == []

    store = ColumnStore(SCHEMA)
    with use_kernel(kernel):
        assert list(store.group_indices(["A"])) == []
        report = detect_violations(
            ColumnStore(SCHEMA),
            [ZIP_CFD, CONST_CFD],
            config=DetectionConfig(method="indexed", kernel=kernel),
        )
    assert list(report.violations) == []


# ---------------------------------------------------------------------------
# single row
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_single_row(kernel):
    column = array("i", [0])
    for primitive, args, kwargs in [
        ("group_codes", ([column], 0, 1), {"sizes": [1]}),
        ("group_codes", ([column, column], 0, 1), {}),
        ("group_projections", ([column], [0]), {}),
        ("codes_disagree", ([column], [0]), {}),
        ("constant_mismatches", (column, [0], 0), {}),
        ("constant_mismatches", (column, [0], 5), {}),
        ("constant_mismatches", (column, [0], None), {}),
        ("variable_violation_groups", ([column], [column], 0, 1), {}),
    ]:
        assert answer(kernel, primitive, *args, **kwargs) == reference(
            primitive, *args, **kwargs
        ), primitive

    store = ColumnStore(SCHEMA, [("x", "z", "w")])
    with use_kernel(kernel):
        groups = list(store.group_indices(["A", "B"]))
    assert groups == [(("x", "z"), [0])]


# ---------------------------------------------------------------------------
# all-identical column (one giant group, no disagreement)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_all_identical_column(kernel):
    column = array("i", [0] * 50)
    varied = array("i", list(range(50)))
    assert answer(kernel, "group_codes", [column], 0, 50, sizes=[1]) == [
        ((0,), list(range(50)))
    ]
    assert answer(kernel, "group_codes", [column, column], 0, 50) == [
        ((0, 0), list(range(50)))
    ]
    assert answer(kernel, "codes_disagree", [column], list(range(50))) is False
    assert answer(kernel, "codes_disagree", [column, varied], list(range(50))) is True
    assert answer(kernel, "constant_mismatches", column, list(range(50)), 0) == []
    assert answer(kernel, "constant_mismatches", column, list(range(50)), 1) == list(
        range(50)
    )
    # Fused Q^V scan: one giant agreeing group is clean, a varied RHS makes
    # it the single violating group.
    assert answer(kernel, "variable_violation_groups", [column], [column], 0, 50) == []
    assert answer(kernel, "variable_violation_groups", [column], [varied], 0, 50) == [
        ((0,), list(range(50)))
    ]

    rows = [("same", "same", str(i)) for i in range(50)]
    with use_kernel(kernel):
        report = detect_violations(
            ColumnStore(SCHEMA, rows),
            [ZIP_CFD],
            config=DetectionConfig(method="indexed", kernel=kernel),
        )
    assert list(report.violations) == []


# ---------------------------------------------------------------------------
# never-encoded pending column
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_pending_column_stays_pending(kernel):
    rows = [(f"a{i % 3}", f"b{i % 3}", f"free-text {i}") for i in range(40)]
    store = ColumnStore.from_relation(Relation(SCHEMA, rows))
    with use_kernel(kernel):
        groups = list(store.group_indices(["A"]))
    # Grouping on A encoded A only; the free-text column C was never touched.
    assert store.is_encoded("A")
    assert not store.is_encoded("C")
    assert [key for key, _members in groups] == [("a0",), ("a1",), ("a2",)]
    assert groups[0][1] == list(range(0, 40, 3))


# ---------------------------------------------------------------------------
# unicode / None values
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_unicode_and_none_values(kernel):
    rows = [
        ("café", "北京", None),
        ("café", "北京", "ok"),
        (None, "żółć", "ok"),
        ("café", "Ωμέγα", None),
        (None, "żółć", None),
    ] * 10
    store = ColumnStore(SCHEMA, rows)
    plain = Relation(SCHEMA, rows)
    with use_kernel(kernel):
        groups = list(store.group_indices(["A", "C"]))
    assert dict(groups) == dict(
        (key, members) for key, members in plain.group_by(["A", "C"]).items()
    )
    # First-occurrence order and ascending members, like the row backend.
    assert [key for key, _ in groups] == list(plain.group_by(["A", "C"]).keys())

    cfd = CFD.build(["B"], ["C"], [{"B": "_", "C": "_"}])
    with use_kernel(kernel):
        report = detect_violations(
            store, [cfd], config=DetectionConfig(method="indexed", kernel=kernel)
        )
    oracle = detect_violations(plain, [cfd], method="inmemory")
    assert list(report.violations) == list(oracle.violations)


# ---------------------------------------------------------------------------
# dictionary larger than the row count (orphaned codes after updates/deletes)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_dictionary_larger_than_row_count(kernel):
    rows = [(f"v{i}", "b", "c") for i in range(40)]
    store = ColumnStore(SCHEMA, rows)
    store.dictionary_size("A")  # force encoding before shrinking
    # Updates append fresh dictionary entries, deletes orphan old ones: the
    # dictionary ends far larger than the surviving rows, and codes are no
    # longer dense in the live data.
    for index in range(10):
        store.update(index, "A", f"fresh{index}")
    for _ in range(35):
        store.delete(len(store) - 1)
    assert store.dictionary_size("A") > len(store)

    with use_kernel(kernel):
        groups = list(store.group_indices(["A"]))
    assert [key for key, _ in groups] == [(f"fresh{i}",) for i in range(5)]
    assert [members for _, members in groups] == [[i] for i in range(5)]

    with use_kernel(kernel):
        result = repair(
            store,
            [CONST_CFD],
            config=RepairConfig(
                method="incremental", kernel=kernel, check_consistency=False
            ),
        )
    assert result.clean


# ---------------------------------------------------------------------------
# cross-kernel: every primitive agrees on a mixed workload
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not numpy_available(), reason="needs the numpy kernel")
def test_primitives_agree_on_mixed_codes():
    first = array("i", [3, 1, 3, 0, 1, 3, 2, 2, 0, 3] * 8)
    second = array("i", [0, 1, 0, 1, 2, 2, 0, 1, 2, 0] * 8)
    indices = list(range(0, 80, 3))
    cases = [
        ("group_codes", ([first], 0, 80), {"sizes": [4]}),
        ("group_codes", ([first], 5, 71), {"sizes": [4]}),
        ("group_codes", ([first, second], 0, 80), {}),
        ("group_codes", ([first, second], 7, 63), {}),
        ("group_projections", ([first], indices), {}),
        ("group_projections", ([first, second], indices), {}),
        ("codes_disagree", ([first], indices), {}),
        ("codes_disagree", ([first, second], indices), {}),
        ("constant_mismatches", (first, indices, 3), {}),
        ("constant_mismatches", (first, indices, None), {}),
        ("variable_violation_groups", ([first], [second], 0, 80), {}),
        ("variable_violation_groups", ([first], [second], 5, 71), {}),
        ("variable_violation_groups", ([first, second], [first], 0, 80), {}),
        ("variable_violation_groups", ([second], [first, second], 7, 63), {}),
    ]
    for primitive, args, kwargs in cases:
        assert answer("numpy", primitive, *args, **kwargs) == reference(
            primitive, *args, **kwargs
        ), primitive
