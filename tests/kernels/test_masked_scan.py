"""Agreement tests for the masked fused ``Q^V`` scan.

The ``mask`` parameter of ``variable_violation_groups`` extends the fused
scan to mixed constant/wildcard patterns: constant LHS cells become
``(column, code)`` pairs applied as a row filter before the group-by.  The
python kernel is the semantics definition; the numpy kernel must reproduce
its output group for group, member for member, in the same order — across
window offsets, mask widths and the small-input fallback threshold.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.kernels.python_kernels import PYTHON_KERNEL

numpy_kernel = pytest.importorskip(
    "repro.kernels.numpy_kernels", reason="numpy kernels need the [fast] extra"
)
NUMPY_KERNEL = numpy_kernel.NUMPY_KERNEL
SMALL_INPUT_THRESHOLD = numpy_kernel.SMALL_INPUT_THRESHOLD


def _columns(rng, count, width, cardinality):
    return [
        array("i", (rng.randrange(cardinality) for _ in range(count)))
        for _ in range(width)
    ]


@pytest.mark.parametrize("count", [0, 8, SMALL_INPUT_THRESHOLD - 1, 200, 1_000])
@pytest.mark.parametrize("mask_width", [1, 2])
def test_masked_scan_agreement(count, mask_width):
    rng = random.Random(count * 31 + mask_width)
    lhs = _columns(rng, count, 2, 5)
    rhs = _columns(rng, count, 1, 3)
    mask_columns = _columns(rng, count, mask_width, 3)
    mask = [(column, rng.randrange(3)) for column in mask_columns]
    expected = PYTHON_KERNEL.variable_violation_groups(lhs, rhs, 0, count, mask=mask)
    actual = NUMPY_KERNEL.variable_violation_groups(lhs, rhs, 0, count, mask=mask)
    assert list(actual) == list(expected)


@pytest.mark.parametrize("start,stop", [(0, 500), (100, 500), (250, 251), (500, 500)])
def test_masked_scan_agreement_with_window(start, stop):
    rng = random.Random(start + stop)
    lhs = _columns(rng, 500, 1, 4)
    rhs = _columns(rng, 500, 2, 2)
    mask = [(_columns(rng, 500, 1, 2)[0], 1)]
    expected = PYTHON_KERNEL.variable_violation_groups(
        lhs, rhs, start, stop, mask=mask
    )
    actual = NUMPY_KERNEL.variable_violation_groups(lhs, rhs, start, stop, mask=mask)
    assert list(actual) == list(expected)


def test_mask_restricting_to_nothing():
    lhs = [array("i", [0, 0, 1, 1])]
    rhs = [array("i", [0, 1, 0, 1])]
    mask = [(array("i", [0, 0, 0, 0]), 7)]  # code 7 never occurs
    assert PYTHON_KERNEL.variable_violation_groups(lhs, rhs, 0, 4, mask=mask) == []
    assert NUMPY_KERNEL.variable_violation_groups(lhs, rhs, 0, 4, mask=mask) == []


def test_mask_selects_the_violating_subset():
    # Rows 0-3 share the LHS key; only rows where the mask column is 1
    # (0, 1, 3) survive, and their RHS codes disagree -> one group of three.
    lhs = [array("i", [5, 5, 5, 5, 6] * 20)]
    rhs = [array("i", [0, 1, 0, 0, 0] * 20)]
    mask_column = array("i", [1, 1, 0, 1, 1] * 20)
    expected = PYTHON_KERNEL.variable_violation_groups(
        lhs, rhs, 0, 100, mask=[(mask_column, 1)]
    )
    actual = NUMPY_KERNEL.variable_violation_groups(
        lhs, rhs, 0, 100, mask=[(mask_column, 1)]
    )
    assert actual == expected
    assert expected, "the construction must produce at least one violating group"
    for _key, members in expected:
        assert all(mask_column[index] == 1 for index in members)
        assert members == sorted(members)


def test_masked_agreement_randomized_sweep():
    rng = random.Random(20260807)
    for _ in range(50):
        count = rng.randrange(0, 400)
        lhs = _columns(rng, count, rng.randrange(1, 3), rng.randrange(2, 6))
        rhs = _columns(rng, count, rng.randrange(1, 3), rng.randrange(2, 4))
        mask = [
            (column, rng.randrange(3))
            for column in _columns(rng, count, rng.randrange(1, 3), 3)
        ]
        start = rng.randrange(0, count + 1)
        stop = rng.randrange(start, count + 1)
        expected = PYTHON_KERNEL.variable_violation_groups(
            lhs, rhs, start, stop, mask=mask
        )
        actual = NUMPY_KERNEL.variable_violation_groups(
            lhs, rhs, start, stop, mask=mask
        )
        assert list(actual) == list(expected)


def test_unmasked_calls_unchanged():
    # mask=None must remain byte-compatible with the historical signature.
    rng = random.Random(3)
    lhs = _columns(rng, 300, 2, 4)
    rhs = _columns(rng, 300, 1, 2)
    assert list(
        NUMPY_KERNEL.variable_violation_groups(lhs, rhs, 0, 300)
    ) == list(PYTHON_KERNEL.variable_violation_groups(lhs, rhs, 0, 300))


def test_detector_uses_fused_path_for_mixed_patterns():
    """Mixed constant/wildcard patterns detect identically across storages.

    End-to-end guard for the fused-path gate in ``detection/indexed.py``:
    a pattern with one constant and one wildcard LHS cell must produce the
    same violations whether it runs fused over code columns (columnar +
    numpy) or through the row-by-row reference.
    """
    from repro.config import DetectionConfig
    from repro.core.cfd import CFD
    from repro.detection.engine import detect_violations
    from repro.relation.relation import Relation
    from repro.relation.schema import Schema

    rng = random.Random(99)
    schema = Schema("t", ["A", "B", "C"])
    rows = [
        (f"a{rng.randrange(6)}", f"b{rng.randrange(3)}", f"c{rng.randrange(4)}")
        for _ in range(400)
    ]
    relation = Relation(schema, rows)
    cfd = CFD.build(["A", "B"], ["C"], [["_", "b1", "_"]], name="mixed")
    reference = detect_violations(
        relation, [cfd], config=DetectionConfig(method="indexed", storage="rows")
    )
    fused = detect_violations(
        relation,
        [cfd],
        config=DetectionConfig(method="indexed", storage="columnar", kernel="numpy"),
    )
    assert list(fused.violations) == list(reference.violations)
    assert len(reference) > 0, "the workload must actually violate the CFD"
