"""Edge-case unit suite for the repair-side kernel primitives.

``partition_classes`` and ``evaluate_classes`` are the batch re-evaluation
pair behind the columnar incremental repair fixpoint: one call partitions a
column set into equivalence classes in flat ``(order, offsets)`` form, the
other resolves every class's ``Q^C`` mismatches and ``Q^V`` disagreement in
one pass.  Each case here is an input shape the vectorised implementation is
most likely to get wrong — the empty dirty-set, single-row classes, the
all-wildcard pattern (no LHS columns: one class holds everything), masked
patterns whose expected constant is absent from the dictionary (``None``
expected code) — asserted byte-identical between ``kernel="python"`` and
``kernel="numpy"``, including the documented orderings (classes ascending by
code key, members and mismatch subsets ascending by index).

The numpy kernel's small-input fallback is disabled throughout (these inputs
are all tiny by construction; with the fallback active the numpy column
would never run its own code).
"""

from __future__ import annotations

from array import array

import pytest

from repro.kernels import get_kernel, numpy_available

KERNELS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="the numpy kernel needs the [fast] extra"
        ),
    ),
]


@pytest.fixture(autouse=True)
def no_small_input_fallback():
    """Force the numpy kernel's vectorised paths even on tiny inputs."""
    if not numpy_available():
        yield
        return
    from repro.kernels import numpy_kernels

    previous = numpy_kernels.SMALL_INPUT_THRESHOLD
    numpy_kernels.SMALL_INPUT_THRESHOLD = 0
    yield
    numpy_kernels.SMALL_INPUT_THRESHOLD = previous


def classes(kernel, columns, length):
    """``partition_classes`` normalised to plain-int lists."""
    order, offsets = get_kernel(kernel).partition_classes(columns, length)
    return [int(i) for i in order], [int(o) for o in offsets]


def findings(kernel, rhs_columns, indices, offsets, const_columns=()):
    """``evaluate_classes`` normalised to plain-int/bool structures."""
    return [
        (int(position), bool(disagree), tuple([int(i) for i in m] for m in mismatches))
        for position, disagree, mismatches in get_kernel(kernel).evaluate_classes(
            rhs_columns, indices, offsets, const_columns
        )
    ]


# ---------------------------------------------------------------------------
# empty dirty-set / empty relation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_empty_inputs(kernel):
    empty = array("i")
    assert classes(kernel, [empty], 0) == ([], [])
    assert classes(kernel, [], 0) == ([], [])
    # The empty dirty-set: nothing to re-evaluate, nothing reported.
    assert findings(kernel, [empty], [], []) == []
    assert findings(kernel, [], [], [], [(empty, 0)]) == []


# ---------------------------------------------------------------------------
# all-wildcard pattern: no LHS columns, one class holds every row
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_no_columns_single_class(kernel):
    assert classes(kernel, [], 5) == ([0, 1, 2, 3, 4], [0])
    rhs_agree = array("i", [7, 7, 7, 7, 7])
    rhs_split = array("i", [7, 7, 8, 7, 7])
    assert findings(kernel, [rhs_agree], [0, 1, 2, 3, 4], [0]) == []
    assert findings(kernel, [rhs_split], [0, 1, 2, 3, 4], [0]) == [(0, True, ())]


# ---------------------------------------------------------------------------
# single-row classes: Q^V can never fire, Q^C still can
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_single_row_classes(kernel):
    lhs = array("i", [3, 0, 2, 1])  # all distinct: four singleton classes
    rhs = array("i", [5, 6, 5, 6])
    order, offsets = classes(kernel, [lhs], 4)
    assert order == [1, 3, 2, 0]  # ascending by code key
    assert offsets == [0, 1, 2, 3]
    assert findings(kernel, [rhs], order, offsets) == []
    # A constant check still reports singletons whose code mismatches.
    const = array("i", [9, 5, 9, 5])
    assert findings(kernel, [rhs], order, offsets, [(const, 9)]) == [
        (0, False, ([1],)),
        (1, False, ([3],)),
    ]


# ---------------------------------------------------------------------------
# class and member ordering
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_key_order_and_member_order(kernel):
    column = array("i", [2, 0, 2, 1, 0, 2])
    order, offsets = classes(kernel, [column], 6)
    # Classes ascending by code, members ascending within each class.
    assert order == [1, 4, 3, 0, 2, 5]
    assert offsets == [0, 2, 3]


@pytest.mark.parametrize("kernel", KERNELS)
def test_multi_column_key_order(kernel):
    first = array("i", [1, 0, 1, 0, 1])
    second = array("i", [0, 2, 0, 1, 1])
    order, offsets = classes(kernel, [first, second], 5)
    # Key tuples sorted first-column-most-significant:
    # (0,1)->[3], (0,2)->[1], (1,0)->[0,2], (1,1)->[4]
    assert order == [3, 1, 0, 2, 4]
    assert offsets == [0, 1, 2, 4]


# ---------------------------------------------------------------------------
# masked patterns: expected constant absent from the dictionary (None code)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_expected_none_mismatches_every_member(kernel):
    lhs = array("i", [0, 0, 1, 1])
    const = array("i", [4, 4, 4, 4])
    order, offsets = classes(kernel, [lhs], 4)
    assert findings(kernel, [], order, offsets, [(const, None)]) == [
        (0, False, ([0, 1],)),
        (1, False, ([2, 3],)),
    ]


@pytest.mark.parametrize("kernel", KERNELS)
def test_mixed_checks_report_ascending_positions(kernel):
    # Three classes: 0 disagrees on Q^V, 1 is clean, 2 fails one of two
    # constant checks.  Only 0 and 2 come back, in ascending class position.
    indices = [0, 1, 2, 3, 4, 5]
    offsets = [0, 2, 4]
    rhs = array("i", [1, 2, 3, 3, 5, 5])
    const_a = array("i", [7, 7, 7, 7, 7, 7])
    const_b = array("i", [8, 8, 8, 8, 9, 8])
    result = findings(
        kernel, [rhs], indices, offsets, [(const_a, 7), (const_b, 8)]
    )
    assert result == [(0, True, ([], [])), (2, False, ([], [4]))]


# ---------------------------------------------------------------------------
# cross-kernel: the primitives agree on a mixed workload, round-tripped
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not numpy_available(), reason="needs the numpy kernel")
def test_repair_primitives_agree_on_mixed_codes():
    lhs_one = array("i", [3, 1, 3, 0, 1, 3, 2, 2, 0, 3] * 8)
    lhs_two = array("i", [0, 1, 0, 1, 2, 2, 0, 1, 2, 0] * 8)
    rhs = array("i", [5, 5, 6, 5, 5, 6, 7, 7, 5, 6] * 8)
    const = array("i", [0, 1, 0, 0, 1, 0, 1, 0, 0, 1] * 8)
    for columns in ([lhs_one], [lhs_one, lhs_two], []):
        python_order, python_offsets = classes("python", columns, 80)
        assert (python_order, python_offsets) == classes("numpy", columns, 80)
        for const_columns in ((), [(const, 0)], [(const, None), (const, 0)]):
            assert findings(
                "python", [rhs], python_order, python_offsets, const_columns
            ) == findings("numpy", [rhs], python_order, python_offsets, const_columns)
