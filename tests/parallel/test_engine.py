"""Parallel detection: agreement with the oracle, executor behaviour, errors."""

from __future__ import annotations

import pytest

from repro.config import DetectionConfig
from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.cust import cust_cfds, cust_relation
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import detect_violations
from repro.errors import ConfigError, ParallelExecutionError, ReproError
from repro.parallel import executor
from repro.parallel.engine import detect_sharded, find_violations_parallel
from repro.repair.incremental import canonical_order


def _boom(payload):
    raise ValueError(f"worker exploded on {payload!r}")


def _double(payload):
    return payload * 2


class TestExecutor:
    def test_results_come_back_in_payload_order(self):
        results, mode = executor.run_tasks(_double, [3, 1, 2], workers=2)
        assert results == [6, 2, 4]
        assert mode == executor.PROCESS_POOL

    def test_workers_one_runs_serially(self):
        results, mode = executor.run_tasks(_double, [1, 2], workers=1)
        assert results == [2, 4]
        assert mode == executor.SERIAL

    def test_single_payload_never_pays_for_a_pool(self):
        results, mode = executor.run_tasks(_double, [21], workers=8)
        assert results == [42]
        assert mode == executor.SERIAL

    def test_worker_crash_surfaces_as_repro_error(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            executor.run_tasks(_boom, [1, 2], workers=2)
        assert "worker" in str(excinfo.value)
        assert "exploded" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)

    def test_worker_crash_in_serial_fallback_also_wrapped(self):
        with pytest.raises(ParallelExecutionError):
            executor.run_tasks(_boom, [1, 2], workers=1)

    def test_pool_that_cannot_start_falls_back_to_serial(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("sem_open blocked by the sandbox")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", refuse)
        results, mode = executor.run_tasks(_double, [1, 2, 3], workers=4)
        assert results == [2, 4, 6]
        assert mode == executor.SERIAL

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParallelExecutionError):
            executor.run_tasks(_double, [1], workers=0)

    def test_resolve_workers_caps_at_task_count(self):
        assert executor.resolve_workers(16, 3) == 3
        assert executor.resolve_workers(None, 2) <= 2
        assert executor.resolve_workers(2, 16) == 2


class TestParallelDetection:
    @pytest.mark.parametrize("shard_count,workers", [(1, 1), (3, 1), (3, 2), (10, 2)])
    def test_agrees_with_oracle_on_cust(self, shard_count, workers):
        relation, cfds = cust_relation(), cust_cfds()
        report = find_violations_parallel(
            relation, cfds, shard_count=shard_count, workers=workers
        )
        oracle = find_all_violations(relation, cfds)
        assert set(report.violations) == set(oracle.violations)

    def test_report_is_in_canonical_order(self):
        relation, cfds = cust_relation(), cust_cfds()
        report = find_violations_parallel(relation, cfds, shard_count=3, workers=1)
        assert list(report.violations) == canonical_order(report.violations, cfds)

    def test_agrees_with_oracle_on_tax(self):
        relation = TaxRecordGenerator(size=400, noise=0.06, seed=9).generate_relation()
        cfds = [zip_state_cfd()]
        report = find_violations_parallel(relation, cfds, shard_count=4, workers=2)
        oracle = find_all_violations(relation, cfds)
        assert set(report.violations) == set(oracle.violations)

    def test_empty_relation_and_empty_cfds(self, relation_factory):
        empty = relation_factory(["A", "B"], [])
        assert find_violations_parallel(empty, [], workers=1).is_clean()
        assert find_violations_parallel(cust_relation(), [], workers=1).is_clean()

    def test_stats_expose_shards_and_mode(self):
        run = detect_sharded(cust_relation(), cust_cfds(), shard_count=3, workers=2)
        assert run.stats.shard_count == 3
        assert run.stats.mode in (executor.SERIAL, executor.PROCESS_POOL)
        assert sum(t.rows for t in run.stats.timings) == len(cust_relation())
        assert run.stats.summary()["components"] == 4

    def test_registered_as_backend(self):
        from repro.registry import detector_names

        assert "parallel" in detector_names()
        report = detect_violations(
            cust_relation(),
            cust_cfds(),
            config=DetectionConfig(method="parallel", shard_count=2, workers=1),
        )
        oracle = find_all_violations(cust_relation(), cust_cfds())
        assert set(report.violations) == set(oracle.violations)

    def test_worker_crash_reaches_caller_as_repro_error(self, monkeypatch):
        from repro.parallel import engine as engine_module

        def explode(payload):
            raise RuntimeError("shard detector died")

        monkeypatch.setattr(engine_module, "_detect_shard", explode)
        with pytest.raises(ReproError) as excinfo:
            find_violations_parallel(
                cust_relation(), cust_cfds(), shard_count=3, workers=1
            )
        assert "shard detector died" in str(excinfo.value)


class TestConfigKnobs:
    def test_workers_rejected_for_serial_backends(self):
        with pytest.raises(ConfigError):
            DetectionConfig(method="indexed", workers=2)
        with pytest.raises(ConfigError):
            DetectionConfig(method="inmemory", shard_count=2)

    def test_workers_allowed_for_parallel_and_auto(self):
        assert DetectionConfig(method="parallel", workers=2).workers == 2
        assert DetectionConfig(workers=2).workers == 2  # auto may escalate

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ConfigError):
            DetectionConfig(method="parallel", workers=0)
        with pytest.raises(ConfigError):
            DetectionConfig(method="parallel", shard_count=0)

    def test_with_method_drops_knobs_when_pinning_serial(self):
        config = DetectionConfig(workers=4, shard_count=8)
        pinned = config.with_method("inmemory")
        assert pinned.workers is None and pinned.shard_count is None
        kept = config.with_method("parallel")
        assert kept.workers == 4 and kept.shard_count == 8
