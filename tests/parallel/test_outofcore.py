"""Out-of-core sharding, detection and repair over spilled code columns.

The spilled pipeline must be observationally identical to the in-memory
one: :func:`spill_shards` produces the same shard membership as
:func:`shard_relation`, spilled detection reports the same violations as
in-memory sharded detection, and spilled repair lands the same changes as
the serial engines.  On top of that, the spill lifecycle matters: the run
directory disappears after a successful merge, survives a crash for
post-mortem, and concurrent runs never share files.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.config import RepairConfig
from repro.core.cfd import CFD
from repro.detection.engine import detect_violations
from repro.errors import ParallelExecutionError
from repro.parallel.engine import detect_sharded, detect_sharded_spilled
from repro.parallel.repairer import ParallelRepairEngine
from repro.parallel.sharding import (
    SpilledShardPlan,
    shard_relation,
    spill_shards,
)
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.cost import CostModel
from repro.repair.heuristic import repair

SCHEMA = Schema("t", ["A", "B", "C", "D"])

#: fd1 groups by A; fd2 adds a mixed constant/wildcard pattern on (A, B) so
#: the masked fused scan runs inside workers too.
CFDS = [
    CFD.build(["A"], ["C"], [["_", "_"]], name="fd1"),
    CFD.build(["A", "B"], ["D"], [["_", "b1", "_"]], name="fd2"),
]


def _workload(rows=120, seed=7):
    import random

    rng = random.Random(seed)
    data = [
        (
            f"a{rng.randrange(9)}",
            f"b{rng.randrange(3)}",
            f"c{rng.randrange(4)}",
            f"d{rng.randrange(3)}",
        )
        for _ in range(rows)
    ]
    return ColumnStore(SCHEMA, data)


def _membership(plan):
    """shard_id -> sorted global indices, comparable across plan kinds."""
    return {
        shard.shard_id: sorted(int(index) for index in shard.global_indices())
        for shard in plan.shards
    }


def _inmemory_membership(plan):
    return {
        shard.shard_id: sorted(shard.global_indices) for shard in plan.shards
    }


class TestSpillShards:
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 7])
    def test_membership_matches_shard_relation(self, tmp_path, shard_count):
        relation = _workload()
        inmemory = shard_relation(relation, CFDS, shard_count)
        spilled = spill_shards(relation, CFDS, shard_count, spill_dir=tmp_path)
        assert _membership(spilled) == _inmemory_membership(inmemory)
        assert spilled.component_count == inmemory.component_count
        assert spilled.sizes() == inmemory.sizes()
        spilled.release()

    def test_python_fallback_membership(self, tmp_path, monkeypatch):
        import repro.parallel.sharding as sharding

        monkeypatch.setattr(sharding, "_numpy", lambda: None)
        relation = _workload()
        inmemory = shard_relation(relation, CFDS, 3)
        spilled = spill_shards(relation, CFDS, 3, spill_dir=tmp_path)
        assert _membership(spilled) == _inmemory_membership(inmemory)
        spilled.release()

    def test_shards_reopen_as_equal_relations(self, tmp_path):
        relation = _workload()
        plan = spill_shards(relation, CFDS, 3, spill_dir=tmp_path)
        dictionaries = plan.load_dictionaries()
        rebuilt = {}
        for shard in plan.shards:
            local = shard.open_relation(plan.schema, dictionaries)
            for position, global_index in enumerate(shard.global_indices()):
                rebuilt[int(global_index)] = local[position]
        assert [rebuilt[index] for index in range(len(relation))] == list(relation)
        plan.release()

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ParallelExecutionError):
            spill_shards(_workload(), CFDS, 0, spill_dir=tmp_path)

    def test_empty_relation_spills_no_shards(self, tmp_path):
        plan = spill_shards(ColumnStore(SCHEMA, []), CFDS, 4, spill_dir=tmp_path)
        assert plan.shards == ()
        plan.release()

    def test_concurrent_plans_are_isolated(self, tmp_path):
        relation = _workload()
        first = spill_shards(relation, CFDS, 2, spill_dir=tmp_path)
        second = spill_shards(relation, CFDS, 2, spill_dir=tmp_path)
        assert first.plan_dir != second.plan_dir
        second.release()
        assert Path(first.plan_dir).is_dir()
        assert _membership(first)  # still readable after the sibling is gone
        first.release()

    def test_release_removes_plan_dir(self, tmp_path):
        plan = spill_shards(_workload(), CFDS, 2, spill_dir=tmp_path)
        plan_dir = Path(plan.plan_dir)
        assert plan_dir.is_dir()
        assert (plan_dir / "dictionaries.pkl").is_file()
        plan.release()
        assert not plan_dir.exists()
        assert tmp_path.is_dir()  # the user base survives


class TestSpilledDetection:
    def test_matches_inmemory_sharded_detection(self, tmp_path):
        relation = _workload()
        store = MmapColumnStore.from_relation(relation, spill_dir=tmp_path)
        spilled = detect_sharded_spilled(
            store, CFDS, shard_count=3, workers=2, spill_dir=str(tmp_path)
        )
        inmemory = detect_sharded(relation, CFDS, shard_count=3, workers=2)
        assert list(spilled.report.violations) == list(inmemory.report.violations)
        assert len(spilled.report) > 0, "the workload must produce violations"
        store.release()

    def test_plan_dir_removed_after_successful_merge(self, tmp_path):
        store = MmapColumnStore.from_relation(_workload(), spill_dir=tmp_path)
        run_dir = store.spill_directory
        detect_sharded_spilled(
            store, CFDS, shard_count=2, workers=1, spill_dir=str(tmp_path)
        )
        leftovers = [
            path for path in tmp_path.iterdir() if path != run_dir
        ]
        assert leftovers == [], "detection must clean up its spill plan"
        store.release()


class TestSpilledRepair:
    def test_matches_serial_incremental(self, tmp_path):
        rows = list(_workload(rows=200, seed=3))
        baseline = repair(
            Relation(SCHEMA, rows),
            CFDS,
            config=RepairConfig(method="incremental", check_consistency=False),
        )
        store = MmapColumnStore(SCHEMA, rows, spill_dir=tmp_path)
        engine = ParallelRepairEngine(
            store,
            CFDS,
            RepairConfig(
                method="parallel",
                storage="mmap",
                workers=2,
                shard_count=3,
                check_consistency=False,
                spill_dir=str(tmp_path),
            ),
        )
        result = engine.run(CostModel())
        assert result.relation.rows == baseline.relation.rows
        # Same set of cell changes, discovered in shard order rather than
        # global scan order (matches the in-memory parallel contract).
        assert sorted(
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in result.changes
        ) == sorted(
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in baseline.changes
        )
        assert result.clean and baseline.clean
        assert baseline.changes, "the workload must actually need repairs"
        assert detect_violations(result.relation, CFDS).is_clean()
        store.release()

    def test_single_shard_falls_back_to_serial(self, tmp_path):
        # One giant component -> one shard -> the engine repairs in process.
        rows = [("a0", f"b{i % 3}", f"c{i % 2}", "d0") for i in range(40)]
        baseline = repair(
            Relation(SCHEMA, rows),
            CFDS,
            config=RepairConfig(method="incremental", check_consistency=False),
        )
        store = MmapColumnStore(SCHEMA, rows, spill_dir=tmp_path)
        engine = ParallelRepairEngine(
            store,
            CFDS,
            RepairConfig(
                method="parallel",
                storage="mmap",
                workers=2,
                check_consistency=False,
                spill_dir=str(tmp_path),
            ),
        )
        result = engine.run(CostModel())
        assert result.relation.rows == baseline.relation.rows
        assert result.changes == baseline.changes
        store.release()

    def test_plan_method_returns_spilled_plan(self, tmp_path):
        store = MmapColumnStore.from_relation(_workload(), spill_dir=tmp_path)
        engine = ParallelRepairEngine(
            store,
            CFDS,
            RepairConfig(
                method="parallel",
                storage="mmap",
                shard_count=3,
                check_consistency=False,
                spill_dir=str(tmp_path),
            ),
        )
        plan = engine.plan()
        assert isinstance(plan, SpilledShardPlan)
        assert sum(plan.sizes()) == len(store)
        plan.release()
        store.release()

    def test_plan_preserved_when_merge_crashes(self, tmp_path, monkeypatch):
        """A crash mid-merge must leave the spill plan for post-mortem."""
        import repro.parallel.repairer as repairer_module

        def explode(*args, **kwargs):
            raise RuntimeError("simulated worker crash")

        monkeypatch.setattr(repairer_module, "run_tasks", explode)
        store = MmapColumnStore.from_relation(
            _workload(), spill_dir=tmp_path / "spill"
        )
        engine = ParallelRepairEngine(
            store,
            CFDS,
            RepairConfig(
                method="parallel",
                storage="mmap",
                workers=2,
                shard_count=3,
                check_consistency=False,
                spill_dir=str(tmp_path / "spill"),
            ),
        )
        with pytest.raises(RuntimeError):
            engine.run(CostModel())
        plan_dirs = [
            path
            for path in (tmp_path / "spill").iterdir()
            if path != store.spill_directory
        ]
        assert plan_dirs, "the crashed run's spill plan must survive"
        assert any(
            (plan_dir / "dictionaries.pkl").is_file() for plan_dir in plan_dirs
        )
        store.release()


def test_delta_log_format_roundtrips(tmp_path):
    """changes.pkl is a plain pickled list of CellChange records."""
    from repro.repair.heuristic import CellChange

    change = CellChange(
        tuple_index=3,
        attribute="C",
        old_value="c1",
        new_value="c0",
        cost=1.0,
        reason="qv",
    )
    path = tmp_path / "changes.pkl"
    with open(path, "wb") as handle:
        pickle.dump([change], handle, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "rb") as handle:
        assert pickle.load(handle) == [change]
