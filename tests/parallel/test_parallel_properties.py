"""Hypothesis properties: parallel execution is invisible in the results.

For *random shard counts and worker counts* — including degenerate ones like
``shard_count > rows`` — sharded parallel detection must report exactly the
violations the incremental/oracle engines find, and sharded parallel repair
must produce the byte-identical repaired relation the incremental engine
produces.  Randomising the execution geometry (rather than the rule set) is
the point: the workload is held fixed and known-consistent, the split is
what varies.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import RepairConfig
from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.cust import cust_cfds, cust_relation
from repro.datagen.generator import TaxRecordGenerator
from repro.parallel.engine import find_violations_parallel
from repro.parallel.sharding import shard_relation
from repro.repair.heuristic import repair

# Keep worker counts small: every drawn example may start a process pool.
shard_counts = st.integers(min_value=1, max_value=40)
worker_counts = st.integers(min_value=1, max_value=3)


@pytest.fixture(scope="module")
def tax():
    return TaxRecordGenerator(size=300, noise=0.07, seed=13).generate_relation()


@pytest.fixture(scope="module")
def tax_cfds():
    return [zip_state_cfd()]


@pytest.fixture(scope="module")
def tax_oracle(tax, tax_cfds):
    return set(find_all_violations(tax, tax_cfds).violations)


@pytest.fixture(scope="module")
def tax_incremental(tax, tax_cfds):
    return repair(tax, tax_cfds, method="incremental")


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shard_count=shard_counts, workers=worker_counts)
def test_parallel_detection_agrees_for_any_geometry(
    tax, tax_cfds, tax_oracle, shard_count, workers
):
    report = find_violations_parallel(
        tax, tax_cfds, shard_count=shard_count, workers=workers
    )
    assert set(report.violations) == tax_oracle


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shard_count=shard_counts, workers=worker_counts)
def test_parallel_repair_agrees_for_any_geometry(
    tax, tax_cfds, tax_incremental, shard_count, workers
):
    result = repair(
        tax,
        tax_cfds,
        config=RepairConfig(method="parallel", shard_count=shard_count, workers=workers),
    )
    assert result.clean == tax_incremental.clean
    assert result.relation.rows == tax_incremental.relation.rows


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(shard_count=st.integers(min_value=1, max_value=100))
def test_shard_plan_partitions_the_relation_for_any_count(shard_count):
    relation, cfds = cust_relation(), cust_cfds()
    plan = shard_relation(relation, cfds, shard_count)
    seen = sorted(
        index for shard in plan.shards for index in shard.global_indices
    )
    assert seen == list(range(len(relation)))
    assert len(plan) <= max(1, min(shard_count, len(relation)))
