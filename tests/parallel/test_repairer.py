"""Parallel repair: byte-identical to incremental, fallbacks, auto escalation."""

from __future__ import annotations

import pytest

from repro import registry
from repro.config import RepairConfig
from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.cust import cust_cfds, cust_relation
from repro.datagen.generator import TaxRecordGenerator
from repro.errors import ReproError
from repro.parallel import executor
from repro.pipeline import Cleaner, DetectionConfig
from repro.repair.cost import CostModel
from repro.repair.heuristic import repair


@pytest.fixture(scope="module")
def tax():
    return TaxRecordGenerator(size=600, noise=0.06, seed=7).generate_relation()


@pytest.fixture(scope="module")
def tax_cfds():
    return [zip_state_cfd()]


class TestParallelRepair:
    @pytest.mark.parametrize("shard_count,workers", [(2, 1), (4, 2), (16, 2)])
    def test_byte_identical_to_incremental_on_tax(self, tax, tax_cfds, shard_count, workers):
        parallel = repair(
            tax,
            tax_cfds,
            config=RepairConfig(
                method="parallel", shard_count=shard_count, workers=workers
            ),
        )
        incremental = repair(tax, tax_cfds, method="incremental")
        assert parallel.clean and incremental.clean
        assert parallel.relation == incremental.relation
        assert parallel.relation.rows == incremental.relation.rows
        # Same set of cell changes, possibly discovered in shard order.
        assert {
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in parallel.changes
        } == {
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in incremental.changes
        }
        assert parallel.total_cost == pytest.approx(incremental.total_cost)

    def test_identical_on_cust(self):
        parallel = repair(
            cust_relation(),
            cust_cfds(),
            config=RepairConfig(method="parallel", shard_count=4, workers=2),
        )
        incremental = repair(cust_relation(), cust_cfds(), method="incremental")
        assert parallel.relation == incremental.relation
        assert parallel.clean

    def test_input_relation_is_not_mutated(self, tax, tax_cfds):
        before = tax.rows
        repair(tax, tax_cfds, config=RepairConfig(method="parallel", workers=1))
        assert tax.rows == before

    def test_first_pass_count_matches_initial_violations(self, tax, tax_cfds):
        result = repair(
            tax, tax_cfds, config=RepairConfig(method="parallel", shard_count=4, workers=1)
        )
        assert result.pass_violation_counts
        assert result.pass_violation_counts[0] == len(
            find_all_violations(tax, tax_cfds)
        )

    def test_stats_attached(self, tax, tax_cfds):
        result = repair(
            tax, tax_cfds, config=RepairConfig(method="parallel", shard_count=4, workers=2)
        )
        assert result.parallel_stats is not None
        assert result.parallel_stats.shard_count == 4
        assert len(result.parallel_stats.timings) == 4

    def test_single_shard_degrades_to_serial_incremental(self, tax, tax_cfds):
        result = repair(
            tax, tax_cfds, config=RepairConfig(method="parallel", shard_count=1)
        )
        assert result.clean
        assert result.parallel_stats.mode == executor.SERIAL
        assert result.relation == repair(tax, tax_cfds, method="incremental").relation

    def test_pool_start_failure_falls_back_to_serial(self, tax, tax_cfds, monkeypatch):
        def refuse(*args, **kwargs):
            raise PermissionError("no process spawning here")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", refuse)
        result = repair(
            tax, tax_cfds, config=RepairConfig(method="parallel", shard_count=4, workers=4)
        )
        assert result.clean
        assert result.parallel_stats.mode == executor.SERIAL
        assert result.relation == repair(tax, tax_cfds, method="incremental").relation

    def test_worker_crash_surfaces_as_repro_error(self, tax, tax_cfds, monkeypatch):
        from repro.parallel import repairer as repairer_module

        def explode(payload):
            raise RuntimeError("shard repair died")

        monkeypatch.setattr(repairer_module, "_repair_shard", explode)
        with pytest.raises(ReproError) as excinfo:
            repair(
                tax,
                tax_cfds,
                config=RepairConfig(method="parallel", shard_count=4, workers=1),
            )
        assert "shard repair died" in str(excinfo.value)

    def test_tuple_weights_are_localized_per_shard(self, relation_factory):
        # Two conflicting groups; the weighted tuple must win the plurality
        # vote in its group no matter which shard it lands in.
        relation = relation_factory(
            ["A", "B"],
            [("a", "1"), ("a", "2"), ("a", "2"), ("b", "7"), ("b", "8"), ("b", "8")],
        )
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        heavy = CostModel(tuple_weights={0: 100.0, 3: 100.0})
        parallel = repair(
            relation,
            [cfd],
            config=RepairConfig(
                method="parallel", shard_count=2, workers=1, cost_model=heavy
            ),
        )
        incremental = repair(
            relation,
            [cfd],
            config=RepairConfig(method="incremental", cost_model=heavy),
        )
        assert parallel.relation == incremental.relation
        assert parallel.relation.value(1, "B") == "1"  # moved onto the heavy tuple
        assert parallel.relation.value(4, "B") == "7"

    def test_overlap_gate_detects_written_grouping_attributes(self):
        from repro.parallel.repairer import _repairs_may_cross_shards

        # [ZIP] -> [ST]: ST is written, only ZIP groups -> no overlap.
        assert not _repairs_may_cross_shards([zip_state_cfd()])
        # phi_a writes B, phi_b groups by B -> overlap.
        phi_a = CFD.build(["A"], ["B"], [["a", "v"]])
        phi_b = CFD.build(["B"], ["C"], [["_", "_"]])
        assert _repairs_may_cross_shards([phi_a, phi_b])

    def test_cross_shard_residue_is_reconciled(self, relation_factory):
        # phi_a's constant pattern *writes* B="v" into shard 0, creating an
        # agreement with shard 1 on phi_b's LHS that did not exist when the
        # plan was computed.  The merge must re-verify and finish serially.
        relation = relation_factory(
            ["A", "B", "C"],
            [("a", "x", "1"), ("b", "v", "2")],
        )
        phi_a = CFD.build(["A"], ["B"], [["a", "v"]])
        phi_b = CFD.build(["B"], ["C"], [["_", "_"]])
        plan_sizes = [1, 1]  # two singleton components -> two shards
        parallel = repair(
            relation,
            [phi_a, phi_b],
            config=RepairConfig(method="parallel", shard_count=2, workers=1),
        )
        assert parallel.parallel_stats.shard_count == len(plan_sizes)
        assert parallel.clean
        assert find_all_violations(parallel.relation, [phi_a, phi_b]).is_clean()
        incremental = repair(relation, [phi_a, phi_b], method="incremental")
        assert parallel.relation == incremental.relation


class TestAutoEscalation:
    def test_auto_escalates_past_the_row_threshold(self, tax, tax_cfds, monkeypatch):
        monkeypatch.setattr(registry, "PARALLEL_AUTO_ROW_THRESHOLD", 100)
        assert registry.select_detection_method(tax, tax_cfds) == "parallel"
        assert registry.select_repair_method(tax, tax_cfds) == "parallel"

    def test_auto_stays_serial_below_the_threshold(self, tax, tax_cfds):
        assert registry.select_detection_method(tax, tax_cfds) != "parallel"
        assert registry.select_repair_method(tax, tax_cfds) != "parallel"

    def test_cleaner_runs_end_to_end_with_escalated_auto(self, tax, tax_cfds, monkeypatch):
        monkeypatch.setattr(registry, "PARALLEL_AUTO_ROW_THRESHOLD", 100)
        result = Cleaner(
            detection=DetectionConfig(workers=2, shard_count=4),
            repair=RepairConfig(workers=2, shard_count=4),
        ).clean(tax, tax_cfds)
        assert result.clean
        assert result.backends["detect"] == "parallel"
        assert result.backends["repair"] == "parallel"
        serial = Cleaner(repair=RepairConfig(method="incremental")).clean(tax, tax_cfds)
        assert result.relation == serial.relation
