"""The sharding invariant: no equivalence class ever spans two shards."""

from __future__ import annotations

import pytest

from repro.core.cfd import CFD
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.cust import cust_cfds, cust_relation
from repro.datagen.generator import TaxRecordGenerator
from repro.errors import ParallelExecutionError
from repro.parallel.sharding import components, shard_relation


def shard_of(plan):
    """Map global tuple index -> shard id for every tuple in the plan."""
    owners = {}
    for shard in plan.shards:
        for global_index in shard.global_indices:
            assert global_index not in owners, "tuple assigned to two shards"
            owners[global_index] = shard.shard_id
    return owners


def assert_invariant(relation, cfds, plan):
    """No two tuples sharing any pattern's LHS equivalence class split up."""
    owners = shard_of(plan)
    assert sorted(owners) == list(range(len(relation)))
    for cfd in cfds:
        for pattern in cfd.tableau:
            lhs_free = [
                attr for attr in cfd.lhs if not pattern.lhs_cell(attr).is_dontcare
            ]
            for indices in relation.group_by(lhs_free).values():
                shard_ids = {owners[index] for index in indices}
                assert len(shard_ids) == 1, (
                    f"class {indices} of {cfd.name} spans shards {shard_ids}"
                )


class TestComponents:
    def test_empty_relation_has_no_components(self, relation_factory):
        assert components(relation_factory(["A", "B"], []), []) == []

    def test_no_cfds_means_singleton_components(self, relation_factory):
        relation = relation_factory(["A", "B"], [("a", "1"), ("a", "2"), ("b", "1")])
        assert components(relation, []) == [[0], [1], [2]]

    def test_shared_lhs_value_merges_components(self, relation_factory):
        relation = relation_factory(["A", "B"], [("a", "1"), ("a", "2"), ("b", "1")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        assert components(relation, [cfd]) == [[0, 1], [2]]

    def test_all_dontcare_lhs_collapses_to_one_component(self, relation_factory):
        relation = relation_factory(["A", "B"], [("a", "1"), ("b", "2"), ("c", "3")])
        cfd = CFD.build(["A"], ["B"], [["@", "_"]])
        assert components(relation, [cfd]) == [[0, 1, 2]]

    def test_transitive_closure_across_cfds(self, relation_factory):
        # 0 and 1 share A; 1 and 2 share B: one component via transitivity.
        relation = relation_factory(
            ["A", "B", "C"],
            [("a", "x", "1"), ("a", "y", "2"), ("b", "y", "3"), ("c", "z", "4")],
        )
        by_a = CFD.build(["A"], ["C"], [["_", "_"]])
        by_b = CFD.build(["B"], ["C"], [["_", "_"]])
        assert components(relation, [by_a, by_b]) == [[0, 1, 2], [3]]


class TestShardPlan:
    def test_invariant_on_cust(self):
        relation, cfds = cust_relation(), cust_cfds()
        for shard_count in (1, 2, 3, 4, 10):
            plan = shard_relation(relation, cfds, shard_count)
            assert_invariant(relation, cfds, plan)

    def test_invariant_on_tax(self):
        relation = TaxRecordGenerator(size=400, noise=0.08, seed=3).generate_relation()
        cfds = [zip_state_cfd()]
        plan = shard_relation(relation, cfds, 4)
        assert_invariant(relation, cfds, plan)
        assert len(plan) == 4
        # Greedy packing keeps the shards roughly balanced.
        assert max(plan.sizes()) <= 2 * min(plan.sizes()) + max(
            len(members) for members in components(relation, cfds)
        )

    def test_shard_count_larger_than_rows(self, relation_factory):
        relation = relation_factory(["A", "B"], [("a", "1"), ("b", "2")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        plan = shard_relation(relation, [cfd], 50)
        assert len(plan) == 2  # one shard per component, never more
        assert plan.requested_shard_count == 50
        assert_invariant(relation, [cfd], plan)

    def test_empty_relation_yields_single_empty_plan(self, relation_factory):
        plan = shard_relation(relation_factory(["A", "B"], []), [], 4)
        assert len(plan) == 1
        assert plan.sizes() == (0,)

    def test_rows_keep_relative_order_and_content(self):
        relation, cfds = cust_relation(), cust_cfds()
        plan = shard_relation(relation, cfds, 3)
        for shard in plan.shards:
            assert list(shard.global_indices) == sorted(shard.global_indices)
            for local, global_index in enumerate(shard.global_indices):
                assert shard.relation[local] == relation[global_index]

    def test_plan_is_deterministic(self):
        relation, cfds = cust_relation(), cust_cfds()
        first = shard_relation(relation, cfds, 3)
        second = shard_relation(relation, cfds, 3)
        assert [s.global_indices for s in first.shards] == [
            s.global_indices for s in second.shards
        ]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ParallelExecutionError):
            shard_relation(cust_relation(), cust_cfds(), 0)

    def test_summary_is_json_friendly(self):
        import json

        plan = shard_relation(cust_relation(), cust_cfds(), 2)
        assert json.dumps(plan.summary())
