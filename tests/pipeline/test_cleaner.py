"""The Cleaner facade: full detect → repair → verify runs with audit trails."""

import pytest

from repro.config import DetectionConfig, RepairConfig
from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import detect_violations
from repro.errors import InconsistentCFDsError, ReproError
from repro.io.sources import CSVSource, RelationSource
from repro.pipeline import Cleaner, CleaningResult, clean


class TestCleanOnCust:
    def test_reaches_a_verified_clean_relation(self, cust, cust_constraints):
        result = Cleaner().clean(cust, cust_constraints)
        assert isinstance(result, CleaningResult)
        assert result.clean
        assert result.final_report.is_clean()
        assert find_all_violations(result.relation, cust_constraints).is_clean()

    def test_source_relation_is_not_mutated(self, cust, cust_constraints):
        before = cust.rows
        Cleaner().clean(cust, cust_constraints)
        assert cust.rows == before

    def test_audit_trail_fields(self, cust, cust_constraints):
        result = Cleaner().clean(cust, cust_constraints)
        assert len(result.initial_report) == 4
        assert result.pass_violation_counts[0] == 4
        assert result.pass_violation_counts[-1] == 0
        assert result.rounds == 1
        assert result.passes >= 1
        assert result.changes and result.total_cost > 0
        assert set(result.stage_seconds) == {
            "analyze",
            "ingest",
            "detect",
            "repair",
            "verify",
        }
        assert result.total_seconds >= 0
        assert result.backends["verify"] == "inmemory"
        summary = result.summary()
        assert summary["clean"] is True
        assert summary["initial_violations"] == 4
        assert summary["final_violations"] == 0

    def test_matches_direct_repair(self, cust, cust_constraints):
        from repro.repair.heuristic import repair

        pipeline_result = Cleaner().clean(cust, cust_constraints)
        direct = repair(cust, cust_constraints)
        assert pipeline_result.relation == direct.relation

    def test_already_clean_input_short_circuits(self, cust, cfd_phi1):
        result = Cleaner().clean(cust, cfd_phi1)
        assert result.clean
        assert result.rounds == 0
        assert result.passes == 0
        assert not result.changes

    def test_module_level_clean_shortcut(self, cust, cust_constraints):
        assert clean(cust, cust_constraints).clean

    def test_inconsistent_cfds_raise(self, relation_factory):
        from repro.core.cfd import CFD

        relation = relation_factory(["A", "B"], [("a", "b")])
        contradictory = [
            CFD.build(["A"], ["B"], [["_", "b"]]),
            CFD.build(["A"], ["B"], [["_", "c"]]),
        ]
        with pytest.raises(InconsistentCFDsError):
            Cleaner().clean(relation, contradictory)

    def test_max_rounds_validated(self):
        with pytest.raises(ReproError):
            Cleaner(max_rounds=0)


class TestSourcesThroughThePipeline:
    def test_csv_source(self, cust, cust_constraints, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        result = Cleaner().clean(CSVSource(path), cust_constraints)
        assert result.clean
        assert str(path) in result.source

    def test_csv_path_string_is_coerced(self, cust, cust_constraints, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        assert Cleaner().clean(str(path), cust_constraints).clean

    def test_iterable_source_with_schema(self, cust, cust_constraints):
        rows = list(cust.iter_dicts())
        result = Cleaner().clean(rows, cust_constraints, schema=cust.schema)
        assert result.clean
        assert len(result.relation) == len(cust)

    def test_detect_stage_only(self, cust, cust_constraints):
        report = Cleaner().detect(RelationSource(cust), cust_constraints)
        assert sorted(report.violating_indices()) == [0, 1, 2, 3]

    @pytest.mark.parametrize("chunk_size", [1, 2, 8192])
    def test_detect_streams_non_relation_sources(self, cust, cust_constraints, tmp_path, chunk_size):
        # An indexed/auto detect over a CSV goes through detect_stream in
        # chunk_size batches and must match the oracle on the materialised
        # relation, whatever the batch size.
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        cleaner = Cleaner(
            detection=DetectionConfig(method="indexed", chunk_size=chunk_size)
        )
        report = cleaner.detect(CSVSource(path), cust_constraints)
        assert sorted(report.violating_indices()) == [0, 1, 2, 3]

    def test_detect_auto_streams_too(self, cust, cust_constraints, tmp_path):
        path = tmp_path / "cust.csv"
        cust.to_csv(path)
        report = Cleaner().detect(CSVSource(path), cust_constraints)
        assert sorted(report.violating_indices()) == [0, 1, 2, 3]


class TestBackendEquivalence:
    """Identical cleaned output no matter which backends do the work."""

    @pytest.fixture(scope="class")
    def noisy_tax(self):
        relation = TaxRecordGenerator(size=2_000, noise=0.05, seed=9).generate_relation()
        return relation, [zip_state_cfd()]

    @pytest.mark.parametrize("repair_method", ["scan", "indexed", "incremental", "auto"])
    def test_identical_relation_across_repair_methods(self, noisy_tax, repair_method):
        relation, cfds = noisy_tax
        baseline = Cleaner(repair=RepairConfig(method="incremental")).clean(relation, cfds)
        result = Cleaner(repair=RepairConfig(method=repair_method)).clean(relation, cfds)
        assert result.clean
        assert result.relation == baseline.relation
        assert detect_violations(result.relation, cfds).is_clean()

    @pytest.mark.parametrize("detect_method", ["inmemory", "indexed", "sql", "auto"])
    def test_detection_backend_does_not_change_the_outcome(self, noisy_tax, detect_method):
        relation, cfds = noisy_tax
        result = Cleaner(detection=DetectionConfig(method=detect_method)).clean(relation, cfds)
        assert result.clean
        assert find_all_violations(result.relation, cfds).is_clean()
