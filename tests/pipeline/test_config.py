"""DetectionConfig / RepairConfig: validation and defaults."""

import pytest

from repro.config import AUTO, DetectionConfig, RepairConfig
from repro.errors import ConfigError
from repro.repair.cost import CostModel


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.method == AUTO
        assert config.strategy is None
        assert config.effective_strategy == "per_cfd"
        assert config.effective_form == "dnf"

    def test_sql_knobs_accepted_for_sql(self):
        config = DetectionConfig(method="sql", strategy="merged", form="cnf")
        assert config.effective_strategy == "merged"
        assert config.effective_form == "cnf"

    def test_sql_knobs_rejected_for_other_backends(self):
        with pytest.raises(ConfigError):
            DetectionConfig(method="indexed", strategy="merged")
        with pytest.raises(ConfigError):
            DetectionConfig(method="inmemory", form="cnf")

    def test_sql_knobs_rejected_with_auto(self):
        # "auto" never resolves to the SQL backend, so latent SQL knobs would
        # be a guaranteed delayed crash — reject them up front.
        with pytest.raises(ConfigError):
            DetectionConfig(strategy="merged")
        with pytest.raises(ConfigError):
            DetectionConfig(form="cnf")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            DetectionConfig(method="sql", strategy="telepathy")

    def test_unknown_form_rejected(self):
        with pytest.raises(ConfigError):
            DetectionConfig(method="sql", form="xnf")

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            DetectionConfig(chunk_size=0)

    def test_with_method_pins_auto(self):
        config = DetectionConfig()
        pinned = config.with_method("indexed")
        assert pinned.method == "indexed"
        assert config.method == AUTO  # frozen: original untouched
        assert pinned.with_method("indexed") is pinned

    def test_frozen(self):
        with pytest.raises(Exception):
            DetectionConfig().method = "sql"

    def test_summary_is_json_friendly(self):
        import json

        assert json.dumps(DetectionConfig(method="sql", form="cnf").summary())


class TestRepairConfig:
    def test_defaults(self):
        config = RepairConfig()
        assert config.method == AUTO
        assert config.max_passes == 25
        assert config.check_consistency is True
        assert config.cost_model is None

    def test_max_passes_must_be_positive(self):
        with pytest.raises(ConfigError):
            RepairConfig(max_passes=0)

    def test_cache_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            RepairConfig(cache_size=0)

    def test_cost_model_carried(self):
        model = CostModel(tuple_weights={0: 2.0})
        assert RepairConfig(cost_model=model).cost_model is model

    def test_with_method_pins_auto(self):
        config = RepairConfig()
        assert config.with_method("scan").method == "scan"
        assert config.method == AUTO
