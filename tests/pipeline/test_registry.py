"""The backend registry: registration, auto-selection, compat wrappers."""

import pytest

from repro import registry
from repro.config import RepairConfig
from repro.core.violations import ViolationReport
from repro.datagen.generator import TaxRecordGenerator
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.detection.engine import detect_violations
from repro.errors import DetectionError, RegistryError, RepairError
from repro.repair.heuristic import repair
from repro.core.satisfaction import find_all_violations


class TestDetectorRegistration:
    def test_builtins_are_registered(self):
        assert set(registry.detector_names()) >= {"inmemory", "sql", "indexed"}
        assert set(registry.repairer_names()) >= {"scan", "indexed", "incremental"}

    def test_custom_detector_dispatches_through_the_facade(self, cust, cust_constraints):
        calls = []

        @registry.register_detector("custom_oracle")
        def custom(relation, cfds, config):
            calls.append(config.method)
            return find_all_violations(relation, cfds)

        try:
            report = detect_violations(cust, cust_constraints, method="custom_oracle")
            assert report.violating_indices() == frozenset({0, 1, 2, 3})
            assert calls == ["custom_oracle"]
        finally:
            registry.unregister_detector("custom_oracle")
        with pytest.raises(DetectionError):
            detect_violations(cust, cust_constraints, method="custom_oracle")

    def test_custom_repair_engine_drives_the_loop(self, cust, cust_constraints):
        class RecordingScanEngine:
            """A scan engine that counts report() calls."""

            reports = 0

            def __init__(self, relation, cfds, config):
                self.relation = relation
                self._cfds = cfds

            def report(self):
                from repro.repair.incremental import canonical_order

                type(self).reports += 1
                report = find_all_violations(self.relation, self._cfds)
                return ViolationReport(canonical_order(report, self._cfds))

            def update(self, tuple_index, attribute, new_value):
                self.relation.update(tuple_index, attribute, new_value)

        registry.register_repairer("recording")(RecordingScanEngine)
        try:
            result = repair(cust, cust_constraints, method="recording")
            assert result.clean
            assert RecordingScanEngine.reports > 0
            baseline = repair(cust, cust_constraints, method="scan")
            assert result.relation == baseline.relation
        finally:
            registry.unregister_repairer("recording")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            registry.register_detector("inmemory")(lambda r, c, cfg: None)
        with pytest.raises(RegistryError):
            registry.register_repairer("scan")(object)

    def test_replace_allows_overwriting(self):
        original = registry.get_detector("inmemory")
        try:
            registry.register_detector("inmemory", replace=True)(original)
            assert registry.get_detector("inmemory") is original
        finally:
            registry.register_detector("inmemory", replace=True)(original)

    def test_auto_is_a_reserved_name(self):
        with pytest.raises(RegistryError):
            registry.register_detector("auto")
        with pytest.raises(RegistryError):
            registry.register_repairer("auto")

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(RegistryError) as excinfo:
            registry.get_detector("psychic")
        assert "auto" in str(excinfo.value)
        with pytest.raises(RegistryError):
            registry.get_repairer("psychic")


class TestAutoSelection:
    def test_small_workload_picks_scans(self, cust, cust_constraints):
        assert registry.select_detection_method(cust, cust_constraints) == "inmemory"
        assert registry.select_repair_method(cust, cust_constraints) == "indexed"

    def test_large_workload_picks_indexes(self):
        relation = TaxRecordGenerator(size=2_000, noise=0.0, seed=1).generate_relation()
        cfds = [zip_state_cfd()]  # hundreds of patterns -> cells above threshold
        assert registry.select_detection_method(relation, cfds) == "indexed"
        assert registry.select_repair_method(relation, cfds) == "incremental"

    def test_selection_boundary_is_the_cell_threshold(self, relation_factory):
        from repro.core.cfd import CFD

        cfd = CFD.build(["A"], ["B"], [["_", "_"]])  # exactly one pattern
        # rows x patterns == threshold -> still the scan side.
        rows = [("a", "b")] * registry.AUTO_CELL_THRESHOLD
        at = relation_factory(["A", "B"], rows)
        assert registry.select_detection_method(at, [cfd]) == "inmemory"
        assert registry.select_repair_method(at, [cfd]) == "indexed"
        # one row past it -> the indexed side.
        over = relation_factory(["A", "B"], rows + [("a", "b")])
        assert registry.select_detection_method(over, [cfd]) == "indexed"
        assert registry.select_repair_method(over, [cfd]) == "incremental"

    def test_empty_cfd_set_counts_as_one_pattern(self, cust):
        assert registry.select_detection_method(cust, []) == "inmemory"

    def test_parallel_threshold_env_parsing_is_forgiving(self, monkeypatch):
        # A malformed knob must not crash `import repro` — it falls back.
        monkeypatch.setenv("REPRO_PARALLEL_AUTO_ROWS", "150_000")
        assert registry._parallel_threshold_from_env() == 150_000
        monkeypatch.setenv("REPRO_PARALLEL_AUTO_ROWS", "150k")
        assert registry._parallel_threshold_from_env() == 150_000
        monkeypatch.setenv("REPRO_PARALLEL_AUTO_ROWS", "-5")
        assert registry._parallel_threshold_from_env() == 150_000
        monkeypatch.setenv("REPRO_PARALLEL_AUTO_ROWS", "42")
        assert registry._parallel_threshold_from_env() == 42

    def test_resolve_auto_requires_a_relation(self):
        with pytest.raises(RegistryError):
            registry.resolve_detector("auto")
        with pytest.raises(RegistryError):
            registry.resolve_repairer("auto")

    def test_auto_repair_matches_pinned_methods(self, cust, cust_constraints):
        auto = repair(cust, cust_constraints, method="auto")
        pinned = repair(cust, cust_constraints, method="incremental")
        assert auto.clean and pinned.clean
        assert auto.relation == pinned.relation

    def test_auto_repair_through_config(self, cust, cust_constraints):
        result = repair(cust, cust_constraints, config=RepairConfig(method="auto"))
        assert result.clean


class TestCompatWrappers:
    def test_unknown_detection_method_still_raises_detection_error(self, cust, cust_constraints):
        with pytest.raises(DetectionError):
            detect_violations(cust, cust_constraints, method="psychic")

    def test_unknown_repair_method_still_raises_repair_error(self, cust, cust_constraints):
        with pytest.raises(RepairError):
            repair(cust, cust_constraints, method="psychic")

    def test_repair_config_and_keywords_are_mutually_exclusive(self, cust, cust_constraints):
        with pytest.raises(RepairError):
            repair(cust, cust_constraints, max_passes=3, config=RepairConfig())

    def test_repair_records_pass_violation_counts(self, cust, cust_constraints):
        result = repair(cust, cust_constraints)
        assert result.pass_violation_counts
        assert result.pass_violation_counts[0] == 4
        assert result.pass_violation_counts[-1] == 0
