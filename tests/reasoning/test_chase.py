"""Tests for the symbolic chase machinery."""

import pytest

from repro.core.cfd import CFD
from repro.reasoning.chase import (
    ChaseConflict,
    SymbolicState,
    all_constants,
    constants_in,
    pair_chase,
    single_tuple_chase,
)


@pytest.fixture
def state():
    return SymbolicState((0,), ("A", "B", "C"))


@pytest.fixture
def pair_state():
    return SymbolicState((0, 1), ("A", "B", "C"))


class TestSymbolicState:
    def test_cells_start_free(self, state):
        assert state.constant_of(0, "A") is None
        assert not state.is_bound(0, "A")

    def test_bind_and_read(self, state):
        assert state.bind(0, "A", "a") is True
        assert state.constant_of(0, "A") == "a"

    def test_rebinding_same_value_is_noop(self, state):
        state.bind(0, "A", "a")
        assert state.bind(0, "A", "a") is False

    def test_conflicting_bind_raises(self, state):
        state.bind(0, "A", "a")
        with pytest.raises(ChaseConflict):
            state.bind(0, "A", "b")

    def test_unify_free_cells(self, pair_state):
        assert pair_state.unify((0, "A"), (1, "A")) is True
        assert pair_state.same_class((0, "A"), (1, "A"))

    def test_unify_propagates_constants(self, pair_state):
        pair_state.bind(0, "A", "a")
        pair_state.unify((0, "A"), (1, "A"))
        assert pair_state.constant_of(1, "A") == "a"

    def test_unify_constant_into_free_class(self, pair_state):
        pair_state.unify((0, "A"), (1, "A"))
        pair_state.bind(1, "A", "a")
        assert pair_state.constant_of(0, "A") == "a"

    def test_unify_conflicting_constants_raises(self, pair_state):
        pair_state.bind(0, "A", "a")
        pair_state.bind(1, "A", "b")
        with pytest.raises(ChaseConflict):
            pair_state.unify((0, "A"), (1, "A"))

    def test_same_class_via_equal_constants(self, pair_state):
        pair_state.bind(0, "A", "a")
        pair_state.bind(1, "A", "a")
        assert pair_state.same_class((0, "A"), (1, "A"))

    def test_matches_cell_semantics(self, state):
        from repro.core.pattern import WILDCARD, PatternValue

        assert state.matches_cell(0, "A", WILDCARD)
        assert not state.matches_cell(0, "A", PatternValue.constant("a"))
        state.bind(0, "A", "a")
        assert state.matches_cell(0, "A", PatternValue.constant("a"))
        assert not state.matches_cell(0, "A", PatternValue.constant("b"))

    def test_instantiate_gives_distinct_fresh_values(self, pair_state):
        pair_state.bind(0, "A", "a")
        pair_state.unify((0, "B"), (1, "B"))
        concrete = pair_state.instantiate(("A", "B", "C"), forbidden={"a"})
        assert concrete[0]["A"] == "a"
        assert concrete[0]["B"] == concrete[1]["B"]
        assert concrete[0]["C"] != concrete[1]["C"]
        assert concrete[0]["C"] != "a"

    def test_instantiate_refuses_free_finite_domain_cells(self, state):
        with pytest.raises(ChaseConflict):
            state.instantiate(("A",), finite_domains={"A": ("x", "y")})


class TestSingleTupleChase:
    def test_forces_constants_transitively(self, state):
        sigma = [
            CFD.build(["A"], ["B"], [["_", "b"]]),
            CFD.build(["B"], ["C"], [["b", "c"]]),
        ]
        single_tuple_chase(sigma, state)
        assert state.constant_of(0, "B") == "b"
        assert state.constant_of(0, "C") == "c"

    def test_constant_lhs_does_not_fire_on_free_cells(self, state):
        sigma = [CFD.build(["A"], ["B"], [["a", "b"]])]
        single_tuple_chase(sigma, state)
        assert state.constant_of(0, "B") is None

    def test_conflicting_forcings_raise(self, state):
        sigma = [
            CFD.build(["A"], ["B"], [["_", "b"]]),
            CFD.build(["A"], ["B"], [["_", "c"]]),
        ]
        with pytest.raises(ChaseConflict):
            single_tuple_chase(sigma, state)

    def test_wildcard_rhs_is_inert(self, state):
        sigma = [CFD.build(["A"], ["B"], [["_", "_"]])]
        single_tuple_chase(sigma, state)
        assert state.constant_of(0, "B") is None


class TestPairChase:
    def test_unifies_rhs_when_lhs_shared(self, pair_state):
        pair_state.unify((0, "A"), (1, "A"))
        sigma = [CFD.build(["A"], ["B"], [["_", "_"]])]
        pair_chase(sigma, pair_state)
        assert pair_state.same_class((0, "B"), (1, "B"))

    def test_does_not_unify_without_lhs_agreement(self, pair_state):
        sigma = [CFD.build(["A"], ["B"], [["_", "_"]])]
        pair_chase(sigma, pair_state)
        assert not pair_state.same_class((0, "B"), (1, "B"))

    def test_transitive_unification(self, pair_state):
        pair_state.unify((0, "A"), (1, "A"))
        sigma = [
            CFD.build(["A"], ["B"], [["_", "_"]]),
            CFD.build(["B"], ["C"], [["_", "_"]]),
        ]
        pair_chase(sigma, pair_state)
        assert pair_state.same_class((0, "C"), (1, "C"))

    def test_constant_rule_applies_per_tuple(self, pair_state):
        pair_state.bind(0, "A", "a")
        sigma = [CFD.build(["A"], ["B"], [["a", "b"]])]
        pair_chase(sigma, pair_state)
        assert pair_state.constant_of(0, "B") == "b"
        assert pair_state.constant_of(1, "B") is None


class TestConstantExtraction:
    def test_constants_in_groups_by_attribute(self):
        cfds = [
            CFD.build(["A"], ["B"], [["a1", "b1"], ["_", "b2"]]),
            CFD.build(["B"], ["A"], [["b3", "_"]]),
        ]
        constants = constants_in(cfds)
        assert constants["A"] == {"a1"}
        assert constants["B"] == {"b1", "b2", "b3"}

    def test_all_constants_flattens(self):
        cfds = [CFD.build(["A"], ["B"], [["a1", "b1"]])]
        assert all_constants(cfds) == {"a1", "b1"}
