"""Tests for classic FD closures over the embedded FDs."""

import pytest

from repro.core.cfd import CFD, FD
from repro.reasoning.closure import (
    attribute_closure,
    candidate_keys,
    embedded_fds,
    fd_implies,
)


@pytest.fixture
def fds():
    return [FD(("A",), ("B",)), FD(("B",), ("C",)), FD(("C", "D"), ("E",))]


class TestAttributeClosure:
    def test_closure_includes_input(self, fds):
        assert {"A"} <= set(attribute_closure(["A"], fds))

    def test_transitive_closure(self, fds):
        assert attribute_closure(["A"], fds) == frozenset({"A", "B", "C"})

    def test_closure_with_composite_lhs(self, fds):
        assert attribute_closure(["A", "D"], fds) == frozenset({"A", "B", "C", "D", "E"})

    def test_closure_with_no_fds(self):
        assert attribute_closure(["X"], []) == frozenset({"X"})


class TestFDImplication:
    def test_implied_fd(self, fds):
        assert fd_implies(fds, FD(("A",), ("C",)))

    def test_not_implied_fd(self, fds):
        assert not fd_implies(fds, FD(("C",), ("A",)))

    def test_reflexive_fd(self, fds):
        assert fd_implies(fds, FD(("A", "B"), ("A",)))


class TestEmbeddedFDs:
    def test_embedded_fds_extracted(self):
        cfds = [
            CFD.build(["A"], ["B"], [["a", "b"]]),
            CFD.build(["B", "C"], ["D"], [["_", "_", "_"]]),
        ]
        assert embedded_fds(cfds) == [FD(("A",), ("B",)), FD(("B", "C"), ("D",))]


class TestCandidateKeys:
    def test_single_key(self, fds):
        keys = candidate_keys(["A", "B", "C", "D", "E"], fds)
        assert ("A", "D") in keys

    def test_keys_are_minimal(self, fds):
        keys = candidate_keys(["A", "B", "C", "D", "E"], fds)
        for key in keys:
            for other in keys:
                if key != other:
                    assert not set(other) < set(key)

    def test_no_fds_means_full_key(self):
        keys = candidate_keys(["A", "B"], [])
        assert keys == [("A", "B")]

    def test_every_attribute_determined(self):
        fds = [FD(("A",), ("B",)), FD(("B",), ("A",))]
        keys = candidate_keys(["A", "B"], fds)
        assert ("A",) in keys and ("B",) in keys
