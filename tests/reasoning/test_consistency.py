"""Tests for consistency analysis (Section 3.1, Theorem 3.2)."""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import satisfies_all
from repro.reasoning.consistency import (
    consistency_witness,
    consistent_domain_values,
    is_consistent,
    is_consistent_with_binding,
)
from repro.relation.attribute import Attribute, bool_attribute
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def bool_schema():
    return Schema("r", [bool_attribute("A"), "B"])


class TestExample31:
    """The two inconsistency scenarios of Example 3.1."""

    def test_psi1_contradictory_constants_is_inconsistent(self):
        psi1 = CFD.build(["A"], ["B"], [["_", "b"], ["_", "c"]])
        assert not is_consistent([psi1])

    def test_each_pattern_alone_is_consistent(self):
        only_b = CFD.build(["A"], ["B"], [["_", "b"]])
        only_c = CFD.build(["A"], ["B"], [["_", "c"]])
        assert is_consistent([only_b])
        assert is_consistent([only_c])

    def test_finite_domain_interplay_is_inconsistent(self, bool_schema):
        psi2 = CFD.build(["A"], ["B"], [[True, "b1"], [False, "b2"]])
        psi3 = CFD.build(["B"], ["A"], [["b1", False], ["b2", True]])
        assert is_consistent([psi2], schema=bool_schema)
        assert is_consistent([psi3], schema=bool_schema)
        assert not is_consistent([psi2, psi3], schema=bool_schema)

    def test_finite_domain_interplay_consistent_without_domain_info(self):
        """Without declaring A's domain finite, a fresh value escapes the trap."""
        psi2 = CFD.build(["A"], ["B"], [[True, "b1"], [False, "b2"]])
        psi3 = CFD.build(["B"], ["A"], [["b1", False], ["b2", True]])
        assert is_consistent([psi2, psi3])


class TestBasicCases:
    def test_empty_set_is_consistent(self):
        assert is_consistent([])

    def test_standard_fds_always_consistent(self):
        cfds = [
            CFD.build(["A"], ["B"], [["_", "_"]]),
            CFD.build(["B", "C"], ["A"], [["_", "_", "_"]]),
        ]
        assert is_consistent(cfds)

    def test_instance_level_cfds_consistent(self):
        cfds = [
            CFD.build(["A"], ["B"], [["a", "b"]]),
            CFD.build(["A"], ["C"], [["a", "c"]]),
        ]
        assert is_consistent(cfds)

    def test_constant_chain_conflict(self):
        """Forced constants that clash through a chain of CFDs."""
        cfds = [
            CFD.build([], ["A"], [["a"]]),
            CFD.build(["A"], ["B"], [["a", "b1"]]),
            CFD.build([], ["B"], [["b2"]]),
        ]
        assert not is_consistent(cfds)

    def test_constant_chain_without_conflict(self):
        cfds = [
            CFD.build([], ["A"], [["a"]]),
            CFD.build(["A"], ["B"], [["a", "b1"]]),
            CFD.build([], ["B"], [["b1"]]),
        ]
        assert is_consistent(cfds)

    def test_cust_cfds_are_consistent(self, cust_constraints):
        assert is_consistent(cust_constraints)


class TestWitness:
    def test_witness_satisfies_the_cfds(self):
        cfds = [
            CFD.build([], ["A"], [["a"]]),
            CFD.build(["A"], ["B"], [["a", "b1"]]),
        ]
        witness = consistency_witness(cfds)
        assert witness is not None
        schema = Schema("r", sorted(witness))
        relation = Relation(schema, [tuple(witness[name] for name in schema.names)])
        assert satisfies_all(relation, cfds)

    def test_witness_none_for_inconsistent_set(self):
        cfds = [CFD.build(["A"], ["B"], [["_", "b"], ["_", "c"]])]
        assert consistency_witness(cfds) is None

    def test_witness_respects_bindings(self):
        cfds = [CFD.build(["A"], ["B"], [["a", "b"]])]
        witness = consistency_witness(cfds, bindings={"A": "a"})
        assert witness is not None
        assert witness["A"] == "a"
        assert witness["B"] == "b"

    def test_empty_cfd_set_witness_is_empty_tuple(self):
        assert consistency_witness([]) == {}


class TestBindingConsistency:
    """The (Σ, B = b) test behind inference rules FD7 and FD8."""

    def test_binding_blocked_by_constant_cfd(self):
        sigma = [CFD.build([], ["B"], [["b1"]])]
        assert is_consistent_with_binding(sigma, "B", "b1")
        assert not is_consistent_with_binding(sigma, "B", "b2")

    def test_example_31_has_no_consistent_boolean_value(self, bool_schema):
        psi2 = CFD.build(["A"], ["B"], [[True, "b1"], [False, "b2"]])
        psi3 = CFD.build(["B"], ["A"], [["b1", False], ["b2", True]])
        sigma = [psi2, psi3]
        assert not is_consistent_with_binding(sigma, "A", True, schema=bool_schema)
        assert not is_consistent_with_binding(sigma, "A", False, schema=bool_schema)

    def test_consistent_domain_values(self, bool_schema):
        sigma = [CFD.build(["A"], ["B"], [[True, "b1"], [True, "b2"]])]
        values = consistent_domain_values(sigma, "A", bool_schema)
        assert values == (False,)

    def test_consistent_domain_values_requires_finite_domain(self):
        schema = Schema("r", ["A", "B"])
        with pytest.raises(ValueError):
            consistent_domain_values([], "A", schema)


class TestFiniteDomainEnumeration:
    def test_three_valued_domain(self):
        schema = Schema("r", [Attribute("A", domain={"x", "y", "z"}), "B"])
        sigma = [
            CFD.build(["A"], ["B"], [["x", "b1"], ["y", "b2"], ["z", "b3"]]),
            CFD.build(["B"], ["B"], [["b1", "b1"], ["b2", "b2"], ["b3", "b3"]]),
        ]
        assert is_consistent(sigma, schema=schema)

    def test_fully_blocked_finite_domain(self):
        schema = Schema("r", [Attribute("A", domain={"x", "y"}), "B"])
        sigma = [
            CFD.build(["A"], ["B"], [["x", "b1"], ["y", "b1"]]),
            CFD.build([], ["B"], [["b2"]]),
        ]
        assert not is_consistent(sigma, schema=schema)
