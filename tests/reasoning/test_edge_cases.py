"""Reasoning edge cases the linter leans on, plus a mincover equivalence property.

The static analyser (``repro.analysis``) routes every verdict through
``is_consistent`` / ``implies`` / ``minimal_cover``; these tests pin the edge
shapes it must survive — duplicate rule names, wildcard-only vs constant-only
tableaux, and empty rule sets — and close with the property the ``optimize``
mode relies on: the minimal cover is logically equivalent to its input.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.reasoning.consistency import is_consistent
from repro.reasoning.implication import equivalent, implies
from repro.reasoning.mincover import minimal_cover
from repro.relation.attribute import Attribute
from repro.relation.schema import Schema


class TestDuplicateNames:
    """Reasoning is name-blind: provenance is the linter's job (CFD004)."""

    def test_consistency_ignores_names(self):
        same_name = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="phi"),
            CFD.build(["A"], ["B"], [["_", "c"]], name="phi"),
        ]
        assert not is_consistent(same_name)

    def test_implication_ignores_names(self):
        sigma = [CFD.build(["A"], ["B"], [["_", "_"]], name="phi")]
        phi = CFD.build(["A"], ["B"], [["_", "_"]], name="completely-different")
        assert implies(sigma, phi)

    def test_cover_of_identical_rules_under_different_names(self):
        twins = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin1"),
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin2"),
        ]
        cover = minimal_cover(twins)
        assert len(cover) == 1
        assert equivalent(cover, twins)


class TestWildcardOnlyVsConstantOnly:
    def test_wildcard_only_rules_are_plain_fds(self):
        # No constants, no finite domains: always consistent, any size.
        fds = [
            CFD.build(["A"], ["B"], [["_", "_"]], name="f1"),
            CFD.build(["B"], ["A"], [["_", "_"]], name="f2"),
            CFD.build(["A", "B"], ["C"], [["_", "_", "_"]], name="f3"),
        ]
        assert is_consistent(fds)
        assert equivalent(minimal_cover(fds), fds)

    def test_constant_only_clash_needs_a_forced_match(self):
        # Contradicting constant rules on LHS value "a" stay *consistent*
        # over an unbounded domain: a tuple with A != "a" satisfies both
        # vacuously.  Only a finite domain that forces the match flips it.
        clashing = [
            CFD.build(["A"], ["B"], [["a", "b"]], name="k1"),
            CFD.build(["A"], ["B"], [["a", "x"]], name="k2"),
        ]
        assert is_consistent(clashing)
        forced = Schema("r", [Attribute("A", domain=("a",)), Attribute("B")])
        assert not is_consistent(clashing, forced)

    def test_constant_rule_does_not_imply_its_wildcard_generalisation(self):
        constant = [CFD.build(["A"], ["B"], [["a", "b"]], name="k")]
        wildcard = CFD.build(["A"], ["B"], [["_", "_"]], name="f")
        assert not implies(constant, wildcard)
        assert implies([wildcard], wildcard)


class TestEmptyRuleSets:
    def test_empty_sigma_is_consistent_with_empty_cover(self):
        assert is_consistent([])
        assert minimal_cover([]) == []

    def test_empty_sigma_implies_only_trivialities(self):
        assert not implies([], CFD.build(["A"], ["B"], [["_", "_"]]))
        # Reflexive dependencies hold in every instance, premises or not.
        assert implies([], CFD.build(["A"], ["A"], [["_", "_"]]))

    def test_empty_sigma_is_equivalent_to_itself(self):
        assert equivalent([], [])


ATTRIBUTES = ("A", "B", "C")
cell = st.one_of(st.sampled_from(("v0", "v1")), st.just("_"))


@st.composite
def normal_form_cfds(draw):
    rhs_attr = draw(st.sampled_from(ATTRIBUTES))
    lhs_size = draw(st.integers(min_value=0, max_value=2))
    lhs_attrs = [attr for attr in ATTRIBUTES if attr != rhs_attr][:lhs_size]
    pattern = {attr: draw(cell) for attr in lhs_attrs}
    pattern[rhs_attr] = draw(cell)
    return CFD.build(lhs_attrs, [rhs_attr], [pattern])


class TestMinimalCoverProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(normal_form_cfds(), min_size=0, max_size=4))
    def test_cover_is_equivalent_to_its_input(self, sigma):
        """Σ ≡ MinCover(Σ) — the contract behind ``analyze(optimize=True)``."""
        if not is_consistent(sigma):
            return
        cover = minimal_cover(sigma)
        assert equivalent(cover, sigma)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(normal_form_cfds(), min_size=0, max_size=4))
    def test_cover_never_grows(self, sigma):
        if not is_consistent(sigma):
            return
        normalised = [part for cfd in sigma for part in cfd.normalize()]
        assert len(minimal_cover(sigma)) <= len(normalised)
