"""Tests for implication analysis (Section 3.2, Theorems 3.4/3.5)."""

import pytest

from repro.core.cfd import CFD
from repro.reasoning.implication import equivalent, implies
from repro.relation.attribute import bool_attribute
from repro.relation.schema import Schema


@pytest.fixture
def bool_schema():
    return Schema("r", [bool_attribute("A"), "B", "C"])


class TestExample32:
    """Σ = {ψ1, ψ2} implies φ = (A → C, (a, _)) — the paper's worked derivation."""

    def test_paper_example(self):
        psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
        psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
        phi = CFD.build(["A"], ["C"], [["a", "_"]])
        assert implies([psi1, psi2], phi)

    def test_intermediate_step_also_implied(self):
        """Step (3) of the derivation: (A → C, (_, c))."""
        psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
        psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
        step3 = CFD.build(["A"], ["C"], [["_", "c"]])
        assert implies([psi1, psi2], step3)

    def test_reverse_not_implied(self):
        psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
        phi = CFD.build(["A"], ["C"], [["a", "_"]])
        assert not implies([psi1], phi)


class TestClassicalFDBehaviour:
    """On all-wildcard CFDs, implication must coincide with Armstrong FD implication."""

    def test_transitivity(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        bc = CFD.build(["B"], ["C"], [["_", "_"]])
        ac = CFD.build(["A"], ["C"], [["_", "_"]])
        assert implies([ab, bc], ac)

    def test_reflexivity(self):
        trivial = CFD.build(["A", "B"], ["A"], [["_", "_", "_"]])
        assert implies([], trivial)

    def test_augmentation(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        augmented = CFD.build(["A", "C"], ["B"], [["_", "_", "_"]])
        assert implies([ab], augmented)

    def test_no_spurious_implication(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        ba = CFD.build(["B"], ["A"], [["_", "_"]])
        assert not implies([ab], ba)

    def test_union_of_rhs(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        ac = CFD.build(["A"], ["C"], [["_", "_"]])
        abc = CFD.build(["A"], ["B", "C"], [["_", "_", "_"]])
        assert implies([ab, ac], abc)


class TestPatternSpecificImplication:
    def test_specialising_the_lhs_pattern_is_implied(self):
        general = CFD.build(["A"], ["B"], [["_", "_"]])
        special = CFD.build(["A"], ["B"], [["a", "_"]])
        assert implies([general], special)
        assert not implies([special], general)

    def test_generalising_a_constant_rhs_is_implied(self):
        constant = CFD.build(["A"], ["B"], [["a", "b"]])
        wildcard = CFD.build(["A"], ["B"], [["a", "_"]])
        assert implies([constant], wildcard)
        assert not implies([wildcard], constant)

    def test_dropping_a_wildcard_lhs_attribute_with_constant_rhs(self):
        """The FD4 scenario: ([B, X] → A, (_, x ‖ a)) implies (X → A, (x ‖ a))."""
        wide = CFD.build(["B", "X"], ["A"], [["_", "x", "a"]])
        narrow = CFD.build(["X"], ["A"], [["x", "a"]])
        assert implies([wide], narrow)
        assert implies([narrow], wide)

    def test_constant_propagation_through_chain(self):
        sigma = [
            CFD.build([], ["A"], [["a"]]),
            CFD.build(["A"], ["B"], [["a", "b"]]),
        ]
        assert implies(sigma, CFD.build([], ["B"], [["b"]]))
        assert not implies(sigma, CFD.build([], ["B"], [["c"]]))

    def test_unrelated_pattern_not_implied(self):
        sigma = [CFD.build(["A"], ["B"], [["a1", "b1"]])]
        assert not implies(sigma, CFD.build(["A"], ["B"], [["a2", "b1"]]))

    def test_multi_pattern_cfd_needs_every_row_implied(self):
        sigma = [CFD.build(["A"], ["B"], [["a1", "b1"]])]
        phi = CFD.build(["A"], ["B"], [["a1", "b1"], ["a2", "b2"]])
        assert not implies(sigma, phi)
        sigma.append(CFD.build(["A"], ["B"], [["a2", "b2"]]))
        assert implies(sigma, phi)


class TestInconsistentSigma:
    def test_inconsistent_sigma_implies_everything(self):
        sigma = [CFD.build(["A"], ["B"], [["_", "b"], ["_", "c"]])]
        arbitrary = CFD.build(["C"], ["A"], [["x", "y"]])
        assert implies(sigma, arbitrary)


class TestFiniteDomains:
    def test_case_analysis_over_finite_domain(self, bool_schema):
        """Σ forces C = c whichever boolean value A takes, so (B → C, (_, c)) follows."""
        sigma = [
            CFD.build(["A"], ["C"], [[True, "c"], [False, "c"]]),
        ]
        phi = CFD.build(["B"], ["C"], [["_", "c"]])
        assert implies(sigma, phi, schema=bool_schema)
        # Without knowing the domain of A is finite, the implication does not hold.
        assert not implies(sigma, phi)

    def test_finite_domain_variable_rhs(self, bool_schema):
        """Two tuples agreeing on B must agree on C once every A value forces the same C."""
        sigma = [
            CFD.build(["A"], ["C"], [[True, "c1"], [False, "c1"]]),
        ]
        phi = CFD.build(["B"], ["C"], [["_", "_"]])
        assert implies(sigma, phi, schema=bool_schema)

    def test_finite_domain_no_false_positive(self, bool_schema):
        sigma = [
            CFD.build(["A"], ["C"], [[True, "c1"], [False, "c2"]]),
        ]
        phi = CFD.build(["B"], ["C"], [["_", "_"]])
        assert not implies(sigma, phi, schema=bool_schema)


class TestEquivalence:
    def test_normalisation_is_an_equivalence(self):
        cfd = CFD.build(["A"], ["B", "C"], [["a", "b", "_"], ["_", "_", "_"]])
        assert equivalent([cfd], cfd.normalize())

    def test_different_sets_not_equivalent(self):
        left = [CFD.build(["A"], ["B"], [["_", "_"]])]
        right = [CFD.build(["B"], ["A"], [["_", "_"]])]
        assert not equivalent(left, right)

    def test_redundant_member_preserves_equivalence(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        bc = CFD.build(["B"], ["C"], [["_", "_"]])
        ac = CFD.build(["A"], ["C"], [["_", "_"]])
        assert equivalent([ab, bc], [ab, bc, ac])
