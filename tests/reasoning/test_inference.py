"""Tests for the inference system I (Figure 3): rule preconditions and soundness.

Soundness of every rule is checked against the chase-based implication test:
whatever a rule derives from its premises must be implied by those premises
(together with Σ for FD7/FD8).
"""

import pytest

from repro.core.cfd import CFD
from repro.errors import ReasoningError
from repro.reasoning.implication import implies
from repro.reasoning.inference import Derivation, InferenceRules
from repro.relation.attribute import bool_attribute
from repro.relation.schema import Schema


@pytest.fixture
def bool_schema():
    return Schema("r", [bool_attribute("F"), "X", "A", "B"])


class TestFD1:
    def test_reflexivity(self):
        conclusion = InferenceRules.fd1(["A", "B"], "A")
        assert conclusion.lhs == ("A", "B")
        assert conclusion.rhs == ("A",)
        assert conclusion.single_pattern().rhs_cell("A").is_wildcard
        assert implies([], conclusion)

    def test_target_must_be_in_lhs(self):
        with pytest.raises(ReasoningError):
            InferenceRules.fd1(["A", "B"], "C")


class TestFD2:
    def test_augmentation_adds_wildcard_cell(self):
        premise = CFD.build(["A"], ["C"], [["a", "c"]])
        conclusion = InferenceRules.fd2(premise, "B")
        assert conclusion.lhs == ("A", "B")
        assert conclusion.single_pattern().lhs_cell("B").is_wildcard
        assert conclusion.single_pattern().lhs_cell("A").value == "a"
        assert implies([premise], conclusion)

    def test_existing_attribute_rejected(self):
        premise = CFD.build(["A"], ["C"], [["a", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd2(premise, "A")

    def test_requires_normal_form(self):
        premise = CFD.build(["A"], ["C"], [["a", "c"], ["_", "_"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd2(premise, "B")


class TestFD3:
    def test_transitivity_with_patterns(self):
        """The FD3 application inside Example 3.2."""
        psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
        psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
        conclusion = InferenceRules.fd3([psi1], psi2)
        assert conclusion.lhs == ("A",)
        assert conclusion.rhs == ("C",)
        assert conclusion.single_pattern().rhs_cell("C").value == "c"
        assert implies([psi1, psi2], conclusion)

    def test_scope_condition_enforced(self):
        """(t1[A1], ..., tk[Ak]) must be ⪯ tp[A1..Ak]."""
        psi1 = CFD.build(["A"], ["B"], [["_", "b1"]])
        psi2 = CFD.build(["B"], ["C"], [["b2", "c"]])  # requires B = b2, premise yields b1
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([psi1], psi2)

    def test_wildcard_premise_not_in_scope_of_constant(self):
        psi1 = CFD.build(["A"], ["B"], [["_", "_"]])
        psi2 = CFD.build(["B"], ["C"], [["b", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([psi1], psi2)

    def test_multiple_premises(self):
        p1 = CFD.build(["X"], ["A"], [["x", "a"]])
        p2 = CFD.build(["X"], ["B"], [["x", "b"]])
        final = CFD.build(["A", "B"], ["C"], [["a", "_", "c"]])
        conclusion = InferenceRules.fd3([p1, p2], final)
        assert conclusion.lhs == ("X",)
        assert conclusion.single_pattern().rhs_cell("C").value == "c"
        assert implies([p1, p2, final], conclusion)

    def test_premises_must_share_lhs(self):
        p1 = CFD.build(["X"], ["A"], [["x", "a"]])
        p2 = CFD.build(["Y"], ["B"], [["y", "b"]])
        final = CFD.build(["A", "B"], ["C"], [["_", "_", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([p1, p2], final)

    def test_premises_must_agree_on_lhs_pattern(self):
        p1 = CFD.build(["X"], ["A"], [["x1", "a"]])
        p2 = CFD.build(["X"], ["B"], [["x2", "b"]])
        final = CFD.build(["A", "B"], ["C"], [["_", "_", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([p1, p2], final)

    def test_needs_at_least_one_premise(self):
        final = CFD.build(["A"], ["C"], [["_", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([], final)

    def test_final_lhs_must_match_premise_rhs(self):
        p1 = CFD.build(["X"], ["A"], [["x", "a"]])
        final = CFD.build(["Z"], ["C"], [["_", "c"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd3([p1], final)


class TestFD4:
    def test_drops_wildcard_lhs_attribute_when_rhs_constant(self):
        premise = CFD.build(["B", "X"], ["A"], [["_", "x", "a"]])
        conclusion = InferenceRules.fd4(premise, "B")
        assert conclusion.lhs == ("X",)
        assert conclusion.single_pattern().rhs_cell("A").value == "a"
        assert implies([premise], conclusion)

    def test_requires_wildcard_cell(self):
        premise = CFD.build(["B", "X"], ["A"], [["b", "x", "a"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd4(premise, "B")

    def test_requires_constant_rhs(self):
        premise = CFD.build(["B", "X"], ["A"], [["_", "x", "_"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd4(premise, "B")

    def test_attribute_must_be_in_lhs(self):
        premise = CFD.build(["B", "X"], ["A"], [["_", "x", "a"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd4(premise, "Z")


class TestFD5:
    def test_substitutes_constant_for_wildcard(self):
        premise = CFD.build(["B", "X"], ["A"], [["_", "x", "_"]])
        conclusion = InferenceRules.fd5(premise, "B", "b7")
        assert conclusion.single_pattern().lhs_cell("B").value == "b7"
        assert implies([premise], conclusion)

    def test_requires_wildcard_cell(self):
        premise = CFD.build(["B", "X"], ["A"], [["b", "x", "_"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd5(premise, "B", "b7")

    def test_attribute_must_be_in_lhs(self):
        premise = CFD.build(["B"], ["A"], [["_", "_"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd5(premise, "A", "x")


class TestFD6:
    def test_upgrades_constant_rhs_to_wildcard(self):
        premise = CFD.build(["X"], ["A"], [["x", "a"]])
        conclusion = InferenceRules.fd6(premise)
        assert conclusion.single_pattern().rhs_cell("A").is_wildcard
        assert implies([premise], conclusion)

    def test_requires_constant_rhs(self):
        premise = CFD.build(["X"], ["A"], [["x", "_"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd6(premise)


class TestFD7:
    def test_upgrades_covered_finite_attribute_to_wildcard(self, bool_schema):
        sigma = []
        premise_true = CFD.build(["X", "F"], ["A"], [["x", True, "a"]])
        premise_false = CFD.build(["X", "F"], ["A"], [["x", False, "a"]])
        conclusion = InferenceRules.fd7(
            sigma + [premise_true, premise_false],
            [premise_true, premise_false],
            "F",
            bool_schema,
        )
        assert conclusion.single_pattern().lhs_cell("F").is_wildcard
        assert implies([premise_true, premise_false], conclusion, schema=bool_schema)

    def test_uncovered_consistent_value_rejected(self, bool_schema):
        premise_true = CFD.build(["X", "F"], ["A"], [["x", True, "a"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd7([premise_true], [premise_true], "F", bool_schema)

    def test_partial_cover_allowed_when_other_value_inconsistent(self, bool_schema):
        block_false = CFD.build(["F"], ["F"], [["_", True]])
        premise_true = CFD.build(["X", "F"], ["A"], [["x", True, "a"]])
        sigma = [block_false, premise_true]
        conclusion = InferenceRules.fd7(sigma, [premise_true], "F", bool_schema)
        assert conclusion.single_pattern().lhs_cell("F").is_wildcard
        assert implies(sigma, conclusion, schema=bool_schema)

    def test_requires_finite_domain(self):
        schema = Schema("r", ["F", "X", "A"])
        premise = CFD.build(["X", "F"], ["A"], [["x", "v", "a"]])
        with pytest.raises(ReasoningError):
            InferenceRules.fd7([premise], [premise], "F", schema)


class TestFD8:
    def test_single_consistent_value_becomes_a_cfd(self, bool_schema):
        sigma = [CFD.build(["F"], ["F"], [["_", True]])]
        conclusion = InferenceRules.fd8(sigma, "F", bool_schema)
        assert conclusion.lhs == ("F",)
        assert conclusion.single_pattern().rhs_cell("F").value is True
        assert implies(sigma, conclusion, schema=bool_schema)

    def test_two_consistent_values_rejected(self, bool_schema):
        with pytest.raises(ReasoningError):
            InferenceRules.fd8([], "F", bool_schema)

    def test_requires_finite_domain(self):
        schema = Schema("r", ["F"])
        with pytest.raises(ReasoningError):
            InferenceRules.fd8([], "F", schema)


class TestDerivation:
    def test_example_32_derivation(self):
        """Replay the five-step derivation of Example 3.2."""
        derivation = Derivation()
        psi1 = derivation.assume(CFD.build(["A"], ["B"], [["_", "b"]]), note="psi1")
        psi2 = derivation.assume(CFD.build(["B"], ["C"], [["_", "c"]]), note="psi2")
        step3 = derivation.apply("FD3", InferenceRules.fd3([psi1], psi2), [psi1, psi2])
        step4 = derivation.apply("FD5", InferenceRules.fd5(step3, "A", "a"), [step3])
        step5 = derivation.apply("FD6", InferenceRules.fd6(step4), [step4])
        assert step5.lhs == ("A",)
        assert step5.single_pattern().lhs_cell("A").value == "a"
        assert step5.single_pattern().rhs_cell("C").is_wildcard
        assert len(derivation.steps) == 5
        # The derived CFD is exactly the paper's φ = (A → C, (a, _)).
        target = CFD.build(["A"], ["C"], [["a", "_"]])
        assert derivation.conclusion == target
        assert implies([psi1, psi2], derivation.conclusion)

    def test_render_lists_steps(self):
        derivation = Derivation()
        derivation.assume(CFD.build(["A"], ["B"], [["_", "b"]]), note="psi1")
        rendered = derivation.render()
        assert "(1)" in rendered and "premise" in rendered

    def test_empty_derivation_has_no_conclusion(self):
        with pytest.raises(ReasoningError):
            Derivation().conclusion
