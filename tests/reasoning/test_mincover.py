"""Tests for algorithm MinCover (Figure 4) and Example 3.3."""

import pytest

from repro.core.cfd import CFD, normalize_all
from repro.reasoning.implication import equivalent
from repro.reasoning.mincover import is_minimal, minimal_cover


@pytest.fixture
def example_33_sigma():
    psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
    psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
    phi = CFD.build(["A"], ["C"], [["a", "_"]])
    return [psi1, psi2, phi]


class TestExample33:
    def test_cover_is_the_paper_result(self, example_33_sigma):
        """Σ_mc = {(∅ → B, (b)), (∅ → C, (c))}."""
        cover = minimal_cover(example_33_sigma)
        shapes = sorted(
            (cfd.lhs, cfd.rhs, cfd.single_pattern().rhs_cell(cfd.rhs[0]).render())
            for cfd in cover
        )
        assert shapes == [((), ("B",), "b"), ((), ("C",), "c")]

    def test_cover_is_equivalent_to_sigma(self, example_33_sigma):
        cover = minimal_cover(example_33_sigma)
        assert equivalent(cover, example_33_sigma)

    def test_cover_is_minimal(self, example_33_sigma):
        assert is_minimal(minimal_cover(example_33_sigma))


class TestGeneralProperties:
    def test_inconsistent_input_gives_empty_cover(self):
        sigma = [CFD.build(["A"], ["B"], [["_", "b"], ["_", "c"]])]
        assert minimal_cover(sigma) == []

    def test_cover_of_plain_fds(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        bc = CFD.build(["B"], ["C"], [["_", "_"]])
        ac = CFD.build(["A"], ["C"], [["_", "_"]])
        cover = minimal_cover([ab, bc, ac])
        assert equivalent(cover, [ab, bc, ac])
        # The transitive FD is redundant, so only two survive.
        assert len(cover) == 2

    def test_cover_removes_duplicate_cfds(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        cover = minimal_cover([ab, CFD.build(["A"], ["B"], [["_", "_"]], name="copy")])
        assert len(cover) == 1

    def test_cover_removes_redundant_lhs_attribute(self):
        wide = CFD.build(["B", "X"], ["A"], [["_", "x", "a"]])
        cover = minimal_cover([wide])
        assert len(cover) == 1
        assert cover[0].lhs == ("X",)
        assert equivalent(cover, [wide])

    def test_cover_of_empty_set(self):
        assert minimal_cover([]) == []

    def test_cover_results_are_normal_form(self, example_33_sigma):
        assert all(cfd.is_normal_form() for cfd in minimal_cover(example_33_sigma))

    def test_cover_of_multi_rhs_cfd(self):
        cfd = CFD.build(["A"], ["B", "C"], [["_", "b", "c"]])
        cover = minimal_cover([cfd])
        assert equivalent(cover, [cfd])
        assert all(len(part.rhs) == 1 for part in cover)

    def test_cust_cfds_cover_is_equivalent(self, cust_constraints):
        cover = minimal_cover(cust_constraints)
        assert cover, "the cust CFDs are consistent so the cover must be non-empty"
        assert equivalent(cover, normalize_all(cust_constraints))

    def test_cover_never_larger_than_normalised_input(self, cust_constraints):
        cover = minimal_cover(cust_constraints)
        assert len(cover) <= len(normalize_all(cust_constraints))


class TestIsMinimal:
    def test_redundant_set_is_not_minimal(self):
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        duplicate = CFD.build(["A"], ["B"], [["_", "_"]], name="dup")
        assert not is_minimal([ab, duplicate])

    def test_reducible_lhs_is_not_minimal(self):
        wide = CFD.build(["B", "X"], ["A"], [["_", "x", "a"]])
        assert not is_minimal([wide])

    def test_non_normal_form_is_not_minimal(self):
        cfd = CFD.build(["A"], ["B", "C"], [["_", "_", "_"]])
        assert not is_minimal([cfd])

    def test_single_irreducible_cfd_is_minimal(self):
        cfd = CFD.build(["A"], ["B"], [["a", "b"]])
        assert is_minimal([cfd])
