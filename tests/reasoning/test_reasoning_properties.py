"""Property-based tests for the reasoning layer.

The key invariants:

* **Consistency soundness**: when the chase declares a CFD set consistent it
  also produces a witness tuple, and that witness genuinely satisfies the set.
* **Consistency vs satisfiable data**: any CFD set that a non-empty concrete
  relation satisfies must be declared consistent.
* **Implication soundness**: if ``Σ |= φ`` according to the chase, then every
  (small, randomly generated) relation satisfying ``Σ`` also satisfies ``φ``.
* **Implication reflexivity/monotonicity**: every member of Σ is implied by Σ,
  and implication survives adding more CFDs to Σ.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.satisfaction import satisfies, satisfies_all
from repro.reasoning.consistency import consistency_witness, is_consistent
from repro.reasoning.implication import implies
from repro.relation.relation import Relation
from repro.relation.schema import Schema

ATTRIBUTES = ("A", "B", "C")
VALUES = ("v0", "v1")

cell = st.one_of(st.sampled_from(VALUES), st.just("_"))
row = st.tuples(*(st.sampled_from(VALUES) for _ in ATTRIBUTES))


@st.composite
def normal_form_cfds(draw):
    rhs_attr = draw(st.sampled_from(ATTRIBUTES))
    lhs_size = draw(st.integers(min_value=0, max_value=2))
    lhs_attrs = [attr for attr in ATTRIBUTES if attr != rhs_attr][:lhs_size]
    pattern = {attr: draw(cell) for attr in lhs_attrs}
    pattern[rhs_attr] = draw(cell)
    return CFD.build(lhs_attrs, [rhs_attr], [pattern])


cfd_sets = st.lists(normal_form_cfds(), min_size=0, max_size=4)


@st.composite
def relations(draw, min_rows=0, max_rows=4):
    rows = draw(st.lists(row, min_size=min_rows, max_size=max_rows))
    return Relation(Schema("r", ATTRIBUTES), rows)


class TestConsistencyProperties:
    @settings(max_examples=60, deadline=None)
    @given(cfd_sets)
    def test_witness_satisfies_sigma(self, sigma):
        witness = consistency_witness(sigma)
        if witness is None:
            return
        attributes = sorted(witness) or ["A"]
        schema = Schema("w", attributes)
        relation = Relation(schema, [tuple(witness.get(name) for name in attributes)])
        checkable = [cfd for cfd in sigma if set(cfd.attributes) <= set(attributes)]
        assert satisfies_all(relation, checkable)

    @settings(max_examples=60, deadline=None)
    @given(relations(min_rows=1), cfd_sets)
    def test_satisfiable_by_data_implies_consistent(self, relation, sigma):
        if satisfies_all(relation, sigma):
            assert is_consistent(sigma)

    @settings(max_examples=40, deadline=None)
    @given(cfd_sets, normal_form_cfds())
    def test_consistency_is_antitone_in_sigma(self, sigma, extra):
        """Adding a CFD can only make a set inconsistent, never repair it."""
        if not is_consistent(sigma):
            assert not is_consistent(sigma + [extra])


class TestImplicationProperties:
    @settings(max_examples=60, deadline=None)
    @given(cfd_sets)
    def test_every_member_is_implied(self, sigma):
        for phi in sigma:
            assert implies(sigma, phi)

    @settings(max_examples=40, deadline=None)
    @given(cfd_sets, normal_form_cfds(), normal_form_cfds())
    def test_implication_is_monotone_in_sigma(self, sigma, phi, extra):
        if implies(sigma, phi):
            assert implies(sigma + [extra], phi)

    @settings(max_examples=60, deadline=None)
    @given(relations(min_rows=1, max_rows=4), cfd_sets, normal_form_cfds())
    def test_implication_soundness_on_data(self, relation, sigma, phi):
        """Σ |= φ and I |= Σ together force I |= φ."""
        if implies(sigma, phi) and satisfies_all(relation, sigma):
            assert satisfies(relation, phi)

    @settings(max_examples=40, deadline=None)
    @given(normal_form_cfds())
    def test_self_implication(self, phi):
        assert implies([phi], phi)
