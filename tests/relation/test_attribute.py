"""Tests for repro.relation.attribute."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.relation.attribute import Attribute, bool_attribute, enum_attribute


class TestAttributeConstruction:
    def test_plain_attribute_has_no_finite_domain(self):
        attribute = Attribute("CC")
        assert not attribute.has_finite_domain
        assert attribute.domain is None

    def test_finite_domain_is_frozen(self):
        attribute = Attribute("MR", domain={"single", "married"})
        assert attribute.has_finite_domain
        assert attribute.domain == frozenset({"single", "married"})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute(123)  # type: ignore[arg-type]

    def test_empty_finite_domain_rejected(self):
        with pytest.raises(DomainError):
            Attribute("A", domain=set())

    def test_str_is_the_name(self):
        assert str(Attribute("ZIP")) == "ZIP"


class TestAttributeDomainChecks:
    def test_unbounded_domain_admits_anything(self):
        attribute = Attribute("NM")
        assert attribute.admits("Mike")
        assert attribute.admits(42)

    def test_finite_domain_admits_members_only(self):
        attribute = Attribute("CH", domain={"yes", "no"})
        assert attribute.admits("yes")
        assert not attribute.admits("maybe")

    def test_check_raises_on_out_of_domain_value(self):
        attribute = Attribute("CH", domain={"yes", "no"})
        with pytest.raises(DomainError):
            attribute.check("maybe")

    def test_check_returns_value_unchanged(self):
        attribute = Attribute("CH", domain={"yes", "no"})
        assert attribute.check("yes") == "yes"


class TestAttributeParsing:
    def test_parse_string_is_identity(self):
        assert Attribute("NM").parse("Mike") == "Mike"

    def test_parse_int(self):
        assert Attribute("SA", dtype=int).parse("42000") == 42000

    def test_parse_float(self):
        assert Attribute("TX", dtype=float).parse("5.25") == pytest.approx(5.25)

    def test_parse_bool_truthy_and_falsy(self):
        attribute = Attribute("FLAG", dtype=bool)
        assert attribute.parse("true") is True
        assert attribute.parse("0") is False

    def test_parse_bool_garbage_raises(self):
        with pytest.raises(DomainError):
            Attribute("FLAG", dtype=bool).parse("banana")

    def test_parse_int_garbage_raises(self):
        with pytest.raises(DomainError):
            Attribute("SA", dtype=int).parse("abc")


class TestConvenienceConstructors:
    def test_bool_attribute(self):
        attribute = bool_attribute("FLAG")
        assert attribute.domain == frozenset({True, False})
        assert attribute.parse("yes") is True

    def test_enum_attribute(self):
        attribute = enum_attribute("MR", ["single", "married"])
        assert attribute.has_finite_domain
        assert attribute.admits("single")
        assert not attribute.admits("divorced")

    def test_attributes_are_hashable_and_comparable(self):
        assert Attribute("A") == Attribute("A")
        assert Attribute("A") != Attribute("B")
        assert len({Attribute("A"), Attribute("A"), Attribute("B")}) == 2
