"""Unit tests for the dictionary-encoded columnar storage core."""

import pickle

import pytest

from repro.errors import DomainError, SchemaError
from repro.relation.attribute import Attribute
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def schema():
    return Schema("r", ["A", "B", "C"])


ROWS = [("a1", "b1", "c1"), ("a1", "b2", "c2"), ("a2", "b1", "c1")]


@pytest.fixture
def store(schema):
    return ColumnStore(schema, ROWS)


@pytest.fixture
def relation(schema):
    return Relation(schema, ROWS)


class TestEncoding:
    def test_codes_are_dense_per_attribute(self, store):
        assert list(store.codes("A")) == [0, 0, 1]
        assert list(store.codes("B")) == [0, 1, 0]

    def test_encode_decode_roundtrip(self, store):
        for attribute in ("A", "B", "C"):
            for code in set(store.codes(attribute)):
                value = store.decode(attribute, code)
                assert store.encode(attribute, value) == code

    def test_encode_unknown_value_is_none(self, store):
        assert store.encode("A", "nope") is None

    def test_dictionary_and_size(self, store):
        assert store.dictionary("A") == ("a1", "a2")
        assert store.dictionary_size("A") == 2

    def test_dictionary_version_tracks_growth_only(self, store):
        version = store.dictionary_version("B")
        store.update(0, "B", "b2")  # existing value: same version
        assert store.dictionary_version("B") == version
        store.update(0, "B", "novel")  # fresh entry: version advances
        assert store.dictionary_version("B") == version + 1
        store.delete(1)  # deletes orphan entries, never shrink the version
        assert store.dictionary_version("B") == version + 1

    def test_project_codes_alignment(self, store):
        b_codes, a_codes = store.project_codes(["B", "A"])
        assert list(a_codes) == [0, 0, 1]
        assert list(b_codes) == [0, 1, 0]


class TestRelationAPI:
    def test_rows_and_getitem_decode(self, store):
        assert store.rows == tuple(ROWS)
        assert store[1] == ("a1", "b2", "c2")
        assert store[-1] == ("a2", "b1", "c1")

    def test_equality_across_storage_classes(self, store, relation):
        assert store == relation
        assert relation == store
        relation.update(0, "B", "different")
        assert store != relation

    def test_insert_mapping_and_positional(self, schema):
        store = ColumnStore(schema)
        assert store.insert({"A": "a", "B": "b", "C": "c"}) == 0
        assert store.insert(("a", "x", "c")) == 1
        assert store[1] == ("a", "x", "c")
        assert list(store.codes("A")) == [0, 0]

    def test_insert_validation_matches_rows(self, schema):
        with pytest.raises(SchemaError):
            ColumnStore(schema).insert(("a", "b"))
        domain_schema = Schema("r", [Attribute("A", domain={"x", "y"}), "B"])
        with pytest.raises(DomainError):
            ColumnStore(domain_schema).insert(("z", 1))

    def test_update_swaps_code_and_grows_dictionary(self, store):
        before = store.dictionary_size("B")
        store.update(0, "B", "novel")
        assert store.value(0, "B") == "novel"
        assert store.dictionary_size("B") == before + 1
        store.update(0, "B", "b2")  # existing value: no new entry
        assert store.dictionary_size("B") == before + 1

    def test_update_out_of_range_raises_without_interning(self, store):
        before = store.dictionary_size("B")
        with pytest.raises(IndexError):
            store.update(99, "B", "lost")
        assert store.dictionary_size("B") == before

    def test_delete_returns_row_and_keeps_dictionary(self, store):
        store.codes("B")  # encode first: orphaned entries are an encoded-state property
        assert store.delete(1) == ("a1", "b2", "c2")
        assert len(store) == 2
        assert store.rows == (("a1", "b1", "c1"), ("a2", "b1", "c1"))
        # Orphaned entries stay: codes are never renumbered.
        assert "b2" in store.dictionary("B")
        assert store.active_domain("B") == ("b1",)

    def test_lazy_encoding_is_per_column_and_not_a_mutation(self, store):
        assert not store.is_encoded("A")
        version = store.version
        assert list(store.codes("A")) == [0, 0, 1]
        assert store.is_encoded("A")
        assert not store.is_encoded("B")  # untouched columns stay raw
        assert store.version == version  # encoding changes no content

    def test_mutations_work_on_raw_and_encoded_columns_alike(self, store):
        store.codes("A")  # A encoded, B raw
        store.update(0, "A", "a9")
        store.update(0, "B", "b9")
        assert store[0] == ("a9", "b9", "c1")
        store.insert(("a1", "b1", "c9"))
        assert store[3] == ("a1", "b1", "c9")
        assert store.delete(0) == ("a9", "b9", "c1")
        assert store.rows[0] == ("a1", "b2", "c2")

    def test_value_and_project_row(self, store):
        assert store.value(1, "B") == "b2"
        assert store.project_row(2, ["C", "A"]) == ("c1", "a2")

    def test_row_dict_and_iter_dicts(self, store):
        assert store.row_dict(0) == {"A": "a1", "B": "b1", "C": "c1"}
        assert list(store.iter_dicts())[1]["B"] == "b2"

    def test_version_bumps_on_every_mutation(self, store):
        version = store.version
        store.insert(("x", "y", "z"))
        assert store.version == version + 1
        store.update(0, "A", "a9")
        assert store.version == version + 2
        store.delete(0)
        assert store.version == version + 3


class TestAlgebra:
    def test_select_matches_rows_backend(self, store, relation):
        columnar = store.select(lambda row: row["B"] == "b1")
        assert isinstance(columnar, ColumnStore)
        assert columnar == relation.select(lambda row: row["B"] == "b1")

    def test_select_missing_attribute_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.select(lambda row: row["nope"] == 1)

    def test_project_keeps_duplicates_and_distinct(self, store, relation):
        assert store.project(["B"]) == relation.project(["B"])
        assert store.project(["B"], distinct=True) == relation.project(["B"], distinct=True)
        assert isinstance(store.project(["B"]), ColumnStore)

    def test_group_by_matches_rows_backend(self, store, relation):
        assert store.group_by(["B"]) == relation.group_by(["B"])
        assert store.group_by(["A", "C"]) == relation.group_by(["A", "C"])
        assert list(store.group_by(["B"])) == list(relation.group_by(["B"]))

    def test_group_indices_empty_attribute_tuple(self, store):
        assert list(store.group_indices(())) == [((), [0, 1, 2])]

    def test_group_indices_range(self, store):
        groups = dict(store.group_indices(["A"], start=1, stop=3))
        assert groups == {("a1",): [1], ("a2",): [2]}

    def test_take_preserves_class_and_order(self, store):
        taken = store.take([2, 0])
        assert isinstance(taken, ColumnStore)
        assert taken.rows == (("a2", "b1", "c1"), ("a1", "b1", "c1"))

    def test_take_is_independent(self, store):
        taken = store.take([0])
        taken.update(0, "A", "changed")
        assert store.value(0, "A") == "a1"

    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.update(0, "A", "changed")
        assert store.value(0, "A") == "a1"
        assert clone.value(0, "A") == "changed"

    def test_active_domain_mixed_types(self, schema):
        store = ColumnStore(schema, [(1, "b", "c"), ("x", "b", "c")])
        assert set(store.active_domain("A")) == {1, "x"}


class TestConstruction:
    def test_from_relation_and_back(self, relation):
        store = ColumnStore.from_relation(relation)
        assert store == relation
        back = Relation.from_validated_rows(store.schema, store)
        assert back == relation

    def test_from_relation_copies_a_store(self, store):
        clone = ColumnStore.from_relation(store)
        assert clone == store
        clone.update(0, "A", "changed")
        assert store.value(0, "A") == "a1"

    def test_from_validated_rows(self, schema):
        store = ColumnStore.from_validated_rows(schema, ROWS)
        assert store.rows == tuple(ROWS)

    def test_csv_roundtrip_stays_columnar(self, tmp_path, store):
        path = tmp_path / "r.csv"
        store.to_csv(path)
        loaded = ColumnStore.from_csv(store.schema, path)
        assert isinstance(loaded, ColumnStore)
        assert loaded == store

    def test_pickle_roundtrip(self, store):
        clone = pickle.loads(pickle.dumps(store))
        assert clone == store
        assert list(clone.codes("A")) == list(store.codes("A"))

    def test_repr_mentions_dictionary(self, store):
        assert "dictionary entries" in repr(store)
