"""Unit tests for the memory-mapped column store and its spill lifecycle.

Three concerns beyond plain storage correctness (which the Hypothesis
storage-agreement grid pins at the behavioural level):

* **backing** — codes really live in files under the spill directory, and
  the store behaves identically to :class:`ColumnStore` through the
  mutation API;
* **lifecycle** — anonymous runs are removed on :meth:`release` (cleanup on
  completion), explicit spill directories survive a simulated crash
  (preserved for post-mortem), and concurrent runs land in isolated
  per-run subdirectories;
* **fallbacks** — the pure-``mmap``/``array`` path used when numpy is
  missing produces the same relation (the no-numpy CI job runs the whole
  suite that way; here we force it locally for one representative check).
"""

from __future__ import annotations

import os

import pytest

from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import (
    SPILL_ENV,
    MmapColumnStore,
    chunk_rows_for_budget,
    create_run_dir,
    resolve_spill_base,
    spill_run,
)
from repro.relation.schema import Schema

ROWS = [
    ("01", "908", "NYC"),
    ("01", "212", "NYC"),
    ("44", "131", "EDI"),
    ("01", "908", "MH"),
]


@pytest.fixture
def schema():
    return Schema("t", ["CC", "AC", "CT"])


def test_roundtrip_matches_columnar(schema, tmp_path):
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    plain = ColumnStore(schema, ROWS)
    assert store.rows == plain.rows
    assert list(store) == list(plain)
    assert len(store) == len(plain)
    for attribute in schema.names:
        assert store.dictionary(attribute) == plain.dictionary(attribute)
        assert list(store.codes(attribute)) == list(plain.codes(attribute))


def test_codes_are_file_backed(schema, tmp_path):
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    run_dir = store.spill_directory
    assert run_dir is not None and run_dir.is_dir()
    code_files = sorted(path.name for path in run_dir.glob("col*.bin"))
    assert len(code_files) == len(schema)
    for position in range(len(schema)):
        path = run_dir / f"col{position}.0.bin"
        assert path.stat().st_size == len(ROWS) * 4  # one int32 per row


def test_mutation_parity_with_columnar(schema, tmp_path):
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    plain = ColumnStore(schema, ROWS)
    store.insert(("01", "215", "PHI"))
    plain.insert(("01", "215", "PHI"))
    store.update(0, "CT", "BOS")
    plain.update(0, "CT", "BOS")
    store.delete(2)
    plain.delete(2)
    store.extend([("44", "141", "GLA"), ("01", "908", "NYC")])
    plain.extend([("44", "141", "GLA"), ("01", "908", "NYC")])
    assert store.rows == plain.rows
    assert store.version == plain.version


def test_take_and_copy_are_independent(schema, tmp_path):
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    sub = store.take([0, 2])
    assert sub.rows == (ROWS[0], ROWS[2])
    clone = store.copy()
    clone.update(0, "CT", "BOS")
    assert store[0][2] == "NYC"  # writes to a copy never reach the source
    for relation in (sub, clone):
        if isinstance(relation, MmapColumnStore):
            relation.release()


def test_anonymous_run_removed_on_release(schema):
    store = MmapColumnStore(schema, ROWS)
    run_dir = store.spill_directory
    assert run_dir is not None and run_dir.is_dir()
    store.release()
    assert not run_dir.exists()
    store.release()  # idempotent


def test_explicit_dir_preserved_on_simulated_crash(schema, tmp_path):
    base = tmp_path / "spill"
    store = MmapColumnStore(schema, ROWS, spill_dir=base)
    run_dir = store.spill_directory
    # A crash never reaches release(): dropping the reference must leave the
    # explicit spill directory in place for post-mortem inspection.
    del store
    assert run_dir.is_dir()
    assert any(run_dir.iterdir())


def test_explicit_dir_removed_on_release(schema, tmp_path):
    base = tmp_path / "spill"
    store = MmapColumnStore(schema, ROWS, spill_dir=base)
    run_dir = store.spill_directory
    store.release()
    assert not run_dir.exists()
    assert base.is_dir()  # the user-supplied base itself is never deleted


def test_concurrent_runs_are_isolated(schema, tmp_path):
    first = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    second = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    assert first.spill_directory != second.spill_directory
    second.release()
    # Releasing one run never touches the other's files.
    assert first.spill_directory.is_dir()
    assert first.rows == ColumnStore(schema, ROWS).rows
    first.release()


def test_spill_env_overrides_default_base(schema, tmp_path, monkeypatch):
    monkeypatch.setenv(SPILL_ENV, str(tmp_path / "from-env"))
    base, explicit = resolve_spill_base(None)
    assert base == tmp_path / "from-env"
    assert explicit
    store = MmapColumnStore(schema, ROWS)
    assert store.spill_directory.parent == tmp_path / "from-env"
    store.release()


def test_spill_run_context(tmp_path):
    with spill_run(tmp_path) as run_dir:
        assert run_dir.is_dir()
        (run_dir / "marker").write_text("x")
    assert not run_dir.exists()  # removed on clean exit
    with pytest.raises(RuntimeError):
        with spill_run(tmp_path) as run_dir:
            (run_dir / "marker").write_text("x")
            raise RuntimeError("simulated crash")
    assert run_dir.is_dir()  # preserved on crash


def test_create_run_dir_unique(tmp_path):
    first = create_run_dir(tmp_path)
    second = create_run_dir(tmp_path)
    assert first != second
    assert first.parent == second.parent == tmp_path


def test_chunk_rows_for_budget():
    assert chunk_rows_for_budget(None, 15) == chunk_rows_for_budget(None, 1)
    small = chunk_rows_for_budget(1, 15)
    large = chunk_rows_for_budget(1024, 15)
    assert 1_024 <= small <= large <= 1_048_576
    assert chunk_rows_for_budget(1_000_000, 1) == 1_048_576  # clamped


def test_from_relation_conversions(schema, tmp_path):
    plain = ColumnStore(schema, ROWS)
    adopted = MmapColumnStore.from_relation(plain, spill_dir=tmp_path)
    assert adopted.rows == plain.rows
    again = MmapColumnStore.from_relation(adopted)
    assert again.rows == plain.rows
    assert again is not adopted
    adopted.release()
    again.release()


def test_adopt_spilled_roundtrip(schema, tmp_path):
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    run_dir = store.spill_directory
    dictionaries = [list(store.dictionary(name)) for name in schema.names]
    adopted = MmapColumnStore.adopt_spilled(
        schema, str(run_dir), len(ROWS), dictionaries
    )
    assert adopted.rows == store.rows
    store.release()


def test_python_fallback_matches(schema, tmp_path, monkeypatch):
    import repro.relation.mmap_store as ms

    monkeypatch.setattr(ms, "_np_module", None)
    monkeypatch.setattr(ms, "_np_checked", True)
    store = MmapColumnStore(schema, ROWS, spill_dir=tmp_path)
    plain = ColumnStore(schema, ROWS)
    store.update(1, "CT", "BOS")
    plain.update(1, "CT", "BOS")
    assert store.rows == plain.rows
    store.release()


def test_chunked_ingestion_never_holds_all_rows(schema, tmp_path):
    # chunk_rows=2 forces multiple flushes; the result must still match a
    # single-shot build row for row.
    def rows():
        for index in range(25):
            yield (f"{index % 3}", f"{index % 5}", f"ct{index % 7}")

    chunked = MmapColumnStore(schema, rows(), spill_dir=tmp_path, chunk_rows=2)
    plain = ColumnStore(schema, list(rows()))
    assert chunked.rows == plain.rows
    chunked.release()
