"""Tests for repro.relation.relation."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.relation.attribute import Attribute
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def schema():
    return Schema("r", ["A", "B", "C"])


@pytest.fixture
def relation(schema):
    return Relation(schema, [("a1", "b1", "c1"), ("a1", "b2", "c2"), ("a2", "b1", "c1")])


class TestInsertion:
    def test_insert_positional_returns_index(self, schema):
        relation = Relation(schema)
        assert relation.insert(("a", "b", "c")) == 0
        assert relation.insert(("d", "e", "f")) == 1

    def test_insert_mapping(self, schema):
        relation = Relation(schema)
        relation.insert({"A": 1, "B": 2, "C": 3})
        assert relation[0] == (1, 2, 3)

    def test_insert_mapping_missing_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema).insert({"A": 1, "B": 2})

    def test_insert_mapping_extra_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema).insert({"A": 1, "B": 2, "C": 3, "D": 4})

    def test_insert_wrong_arity_raises(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema).insert(("a", "b"))

    def test_insert_respects_finite_domains(self):
        schema = Schema("r", [Attribute("A", domain={"x", "y"}), "B"])
        relation = Relation(schema)
        relation.insert(("x", 1))
        with pytest.raises(DomainError):
            relation.insert(("z", 2))

    def test_extend_and_len(self, schema):
        relation = Relation(schema)
        relation.extend([("a", "b", "c"), ("d", "e", "f")])
        assert len(relation) == 2

    def test_constructor_rows(self, relation):
        assert len(relation) == 3


class TestAccess:
    def test_value_by_name(self, relation):
        assert relation.value(1, "B") == "b2"

    def test_row_dict(self, relation):
        assert relation.row_dict(0) == {"A": "a1", "B": "b1", "C": "c1"}

    def test_project_row(self, relation):
        assert relation.project_row(2, ["C", "A"]) == ("c1", "a2")

    def test_iter_dicts(self, relation):
        dicts = list(relation.iter_dicts())
        assert len(dicts) == 3
        assert dicts[1]["B"] == "b2"

    def test_rows_snapshot_is_immutable_copy(self, relation):
        snapshot = relation.rows
        relation.insert(("x", "y", "z"))
        assert len(snapshot) == 3

    def test_equality(self, schema, relation):
        clone = Relation(schema, relation.rows)
        assert clone == relation


class TestMutation:
    def test_update_changes_single_cell(self, relation):
        relation.update(0, "B", "new")
        assert relation.value(0, "B") == "new"
        assert relation.value(0, "A") == "a1"

    def test_update_respects_domain(self):
        schema = Schema("r", [Attribute("A", domain={"x", "y"})])
        relation = Relation(schema, [("x",)])
        with pytest.raises(DomainError):
            relation.update(0, "A", "z")

    def test_delete_returns_row(self, relation):
        row = relation.delete(1)
        assert row == ("a1", "b2", "c2")
        assert len(relation) == 2

    def test_copy_is_independent(self, relation):
        clone = relation.copy()
        clone.update(0, "A", "changed")
        assert relation.value(0, "A") == "a1"

    def test_from_validated_rows_adopts_without_coercion(self, relation):
        from repro.relation.relation import Relation

        adopted = Relation.from_validated_rows(relation.schema, relation.rows)
        assert adopted == relation
        adopted.update(0, "A", "changed")
        assert relation.value(0, "A") == "a1"  # independent row list


class TestAlgebra:
    def test_select(self, relation):
        selected = relation.select(lambda row: row["B"] == "b1")
        assert len(selected) == 2

    def test_project_keeps_duplicates_by_default(self, relation):
        projected = relation.project(["B"])
        assert len(projected) == 3

    def test_project_distinct(self, relation):
        projected = relation.project(["B"], distinct=True)
        assert sorted(row[0] for row in projected) == ["b1", "b2"]

    def test_group_by(self, relation):
        groups = relation.group_by(["B"])
        assert groups[("b1",)] == [0, 2]
        assert groups[("b2",)] == [1]

    def test_active_domain_sorted(self, relation):
        assert relation.active_domain("A") == ("a1", "a2")

    def test_active_domain_mixed_types(self, schema):
        relation = Relation(schema, [(1, "b", "c"), ("x", "b", "c")])
        # Must not raise even though int and str are not mutually orderable.
        assert set(relation.active_domain("A")) == {1, "x"}


class TestCSVRoundTrip:
    def test_round_trip(self, tmp_path, relation):
        path = tmp_path / "r.csv"
        relation.to_csv(path)
        loaded = Relation.from_csv(relation.schema, path)
        assert loaded == relation

    def test_round_trip_with_typed_attributes(self, tmp_path):
        schema = Schema("r", [Attribute("A"), Attribute("N", dtype=int)])
        relation = Relation(schema, [("a", 1), ("b", 2)])
        path = tmp_path / "typed.csv"
        relation.to_csv(path)
        loaded = Relation.from_csv(schema, path)
        assert loaded.rows == (("a", 1), ("b", 2))

    def test_header_mismatch_raises(self, tmp_path, relation):
        path = tmp_path / "r.csv"
        relation.to_csv(path)
        other_schema = Schema("r", ["X", "Y", "Z"])
        with pytest.raises(SchemaError):
            Relation.from_csv(other_schema, path)

    def test_empty_file_loads_empty_relation(self, tmp_path, schema):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(Relation.from_csv(schema, path)) == 0

    def test_from_dicts(self, schema):
        relation = Relation.from_dicts(schema, [{"A": 1, "B": 2, "C": 3}])
        assert relation[0] == (1, 2, 3)
