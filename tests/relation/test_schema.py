"""Tests for repro.relation.schema."""

import pytest

from repro.errors import SchemaError
from repro.relation.attribute import Attribute
from repro.relation.schema import Schema


@pytest.fixture
def schema():
    return Schema("cust", ["CC", "AC", "PN", "NM"])


class TestSchemaConstruction:
    def test_names_preserve_order(self, schema):
        assert schema.names == ("CC", "AC", "PN", "NM")

    def test_strings_become_attributes(self, schema):
        assert all(isinstance(attribute, Attribute) for attribute in schema.attributes)

    def test_mixed_attribute_and_string_inputs(self):
        schema = Schema("r", [Attribute("A", domain={"x"}), "B"])
        assert schema["A"].has_finite_domain
        assert not schema["B"].has_finite_domain

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", ["A", "A"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("", ["A"])

    def test_invalid_attribute_type_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", [42])  # type: ignore[list-item]


class TestSchemaAccess:
    def test_len_and_iteration(self, schema):
        assert len(schema) == 4
        assert [attribute.name for attribute in schema] == list(schema.names)

    def test_contains(self, schema):
        assert "CC" in schema
        assert "ZIP" not in schema

    def test_getitem_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema["ZIP"]

    def test_position_and_positions(self, schema):
        assert schema.position("AC") == 1
        assert schema.positions(["NM", "CC"]) == (3, 0)

    def test_position_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.position("ZIP")

    def test_validate_attributes_passes_through(self, schema):
        assert schema.validate_attributes(["CC", "PN"]) == ("CC", "PN")

    def test_validate_attributes_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_attributes(["CC", "ZIP"])


class TestSchemaDerived:
    def test_project_keeps_requested_order(self, schema):
        projected = schema.project(["NM", "CC"])
        assert projected.names == ("NM", "CC")
        assert projected.name == "cust"

    def test_project_unknown_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.project(["ZIP"])

    def test_finite_domain_attributes(self):
        schema = Schema("r", [Attribute("A", domain={"x", "y"}), "B"])
        assert [attribute.name for attribute in schema.finite_domain_attributes()] == ["A"]

    def test_equality_and_hash(self, schema):
        same = Schema("cust", ["CC", "AC", "PN", "NM"])
        other = Schema("cust", ["CC", "AC", "PN"])
        assert schema == same
        assert schema != other
        assert hash(schema) == hash(same)

    def test_repr_mentions_name_and_attributes(self, schema):
        assert "cust" in repr(schema)
        assert "CC" in repr(schema)
