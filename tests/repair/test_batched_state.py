"""Tests for the batched execution mode of :class:`RepairState`.

The batched path (columnar storage + a ``fused_repair_scan`` kernel) keeps
the same violation-state contract as the dict-indexed reference — these
tests pin the equivalences the mode relies on: a batch of changes applied in
one :meth:`RepairState.apply_changes` call leaves the state byte-identical
to the reference applying them one at a time, no-op entries are not counted,
outside mutation still trips the version guard, and after any batch the
maintained report equals a from-scratch rebuild over the final relation.
"""

from __future__ import annotations

import pytest

from repro.datagen.cust import cust_cfds, cust_relation
from repro.errors import DetectionError
from repro.kernels import numpy_available, use_kernel
from repro.relation.columnar import ColumnStore
from repro.repair.incremental import RepairState

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the batched path needs the [fast] extra"
)

#: A change sequence exercising the interesting shapes: a no-op (tuple 0
#: already holds CT='NYC'), an RHS fix, an LHS move off the no-op'd cell
#: (the intermediate class must be dirtied too), a fresh dictionary value,
#: and a trailing no-op.  Three of the five entries actually change a cell.
CHANGES = [
    (0, "CT", "NYC"),  # already holds NYC: must not count as applied
    (3, "ZIP", "10012"),
    (0, "CT", "Chicago"),
    (2, "STR", "somewhere new"),
    (1, "CT", "NYC"),  # already holds NYC: must not count as applied
]
EFFECTIVE = 3


@pytest.fixture
def store():
    store = ColumnStore.from_relation(cust_relation())
    for cfd in cust_cfds():
        for attribute in cfd.attributes:
            store.codes(attribute)
    return store


def batched_state(store):
    with use_kernel("numpy"):
        state = RepairState(store, cust_cfds())
    assert state.batched
    return state


def test_initial_report_matches_reference(store):
    with use_kernel("python"):
        reference = RepairState(store.copy(), cust_cfds())
    assert list(batched_state(store).report().violations) == list(
        reference.report().violations
    )


def test_apply_changes_matches_sequential_reference(store):
    state = batched_state(store)
    with use_kernel("python"):
        reference = RepairState(store.copy(), cust_cfds())
    applied_one_at_a_time = sum(
        reference.apply_change(*change) for change in CHANGES
    )
    with use_kernel("numpy"):
        applied = state.apply_changes(CHANGES)
    assert applied == applied_one_at_a_time == EFFECTIVE
    assert list(state.report().violations) == list(reference.report().violations)
    assert state.relation.rows == reference.relation.rows


def test_apply_changes_matches_fresh_rebuild(store):
    state = batched_state(store)
    with use_kernel("numpy"):
        state.apply_changes(CHANGES)
        rebuilt = RepairState(state.relation, cust_cfds())
    assert list(state.report().violations) == list(rebuilt.report().violations)


def test_noop_batch_applies_nothing(store):
    state = batched_state(store)
    before = state.stats()["changes_applied"]
    with use_kernel("numpy"):
        assert state.apply_changes([(1, "CT", "NYC"), (1, "CT", "NYC")]) == 0
        assert state.apply_changes([]) == 0
    assert state.stats()["changes_applied"] == before
    assert state.relation.version == store.version


def test_apply_change_delegates_to_batch(store):
    state = batched_state(store)
    with use_kernel("numpy"):
        assert state.apply_change(0, "CT", "PHI") is True
        assert state.apply_change(0, "CT", "PHI") is False


def test_outside_mutation_trips_version_guard(store):
    state = batched_state(store)
    store.update(0, "CT", "elsewhere")
    with pytest.raises(DetectionError):
        state.report()
    with use_kernel("numpy"), pytest.raises(DetectionError):
        state.apply_changes([(0, "CT", "NYC")])


def test_reference_mode_apply_changes_loops_apply_change(store):
    with use_kernel("python"):
        state = RepairState(store.copy(), cust_cfds())
        assert not state.batched
        reference = RepairState(store.copy(), cust_cfds())
        applied = state.apply_changes(CHANGES)
        for change in CHANGES:
            reference.apply_change(*change)
    assert applied == EFFECTIVE
    assert list(state.report().violations) == list(reference.report().violations)
