"""Tests for the repair cost model."""

import pytest

from repro.repair.cost import CostModel, levenshtein, normalized_distance


class TestLevenshtein:
    def test_identical_strings(self):
        assert levenshtein("NYC", "NYC") == 0

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("NYC", "NYD") == 1

    def test_insertion_and_deletion(self):
        assert levenshtein("MH", "MHT") == 1
        assert levenshtein("MHT", "MH") == 1

    def test_symmetric(self):
        assert levenshtein("Chicago", "Boston") == levenshtein("Boston", "Chicago")

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_triangle_inequality_sample(self):
        a, b, c = "Edinburgh", "Edimburg", "Hamburg"
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalizedDistance:
    def test_equal_values(self):
        assert normalized_distance("x", "x") == 0.0
        assert normalized_distance(5, 5) == 0.0

    def test_string_distance_bounded(self):
        assert 0.0 < normalized_distance("NYC", "MH") <= 1.0

    def test_completely_different_strings(self):
        assert normalized_distance("abc", "xyz") == 1.0

    def test_non_string_values_use_unit_distance(self):
        assert normalized_distance(1, 2) == 1.0
        assert normalized_distance(1, "1") == 1.0


class TestCostModel:
    def test_default_weight(self):
        model = CostModel()
        assert model.weight(17) == 1.0

    def test_tuple_weights_override_default(self):
        model = CostModel(tuple_weights={3: 5.0}, default_weight=2.0)
        assert model.weight(3) == 5.0
        assert model.weight(4) == 2.0

    def test_modification_cost_scales_with_weight(self):
        model = CostModel(tuple_weights={0: 10.0})
        cheap = CostModel().modification_cost(0, "abc", "abd")
        expensive = model.modification_cost(0, "abc", "abd")
        assert expensive == pytest.approx(10 * cheap)

    def test_no_change_costs_nothing(self):
        assert CostModel().modification_cost(0, "same", "same") == 0.0


class TestCodeDistanceCache:
    """The code-keyed distance memo of the batched candidate-pricing path."""

    @pytest.fixture
    def store(self):
        from repro.relation.columnar import ColumnStore
        from repro.relation.schema import Schema

        store = ColumnStore(
            Schema("r", ["CT", "ZIP"]),
            [("NYC", "10001"), ("NYD", "10001"), ("Chicago", "60601")],
        )
        store.codes("CT")
        store.codes("ZIP")
        return store

    def _cache(self, store):
        from repro.repair.cost import CodeDistanceCache

        return CodeDistanceCache(store)

    def test_distance_matches_value_reference(self, store):
        cache = self._cache(store)
        nyc, nyd = store.encode("CT", "NYC"), store.encode("CT", "NYD")
        assert cache.distance("CT", nyc, nyd) == normalized_distance("NYC", "NYD")
        assert cache.distance("CT", nyd, nyc) == normalized_distance("NYC", "NYD")
        assert cache.distance("CT", nyc, nyc) == 0.0

    def test_projection_cost_is_bit_identical_to_value_reference(self, store):
        cache = self._cache(store)
        model = CostModel()
        attributes = ["CT", "ZIP"]
        old_codes = [store.encode("CT", "NYC"), store.encode("ZIP", "10001")]
        new_codes = [store.encode("CT", "Chicago"), store.encode("ZIP", "60601")]
        old_values = ["NYC", "10001"]
        new_values = ["Chicago", "60601"]
        for weight in (1.0, 2.5, 7.125):
            assert cache.projection_cost(
                weight, attributes, old_codes, new_codes
            ) == model.projection_cost(weight, old_values, new_values)

    def test_memo_survives_dictionary_growth(self, store):
        cache = self._cache(store)
        nyc, nyd = store.encode("CT", "NYC"), store.encode("CT", "NYD")
        assert cache.distance("CT", nyc, nyd) == normalized_distance("NYC", "NYD")
        memo = cache._memo["CT"]
        store.update(2, "CT", "Boston")  # appends a fresh entry, new version
        fresh = store.encode("CT", "Boston")
        # The old pair's memo entry is still there (codes never renumber)...
        assert cache._memo["CT"] is memo
        assert (min(nyc, nyd), max(nyc, nyd)) in memo
        # ...and the refreshed snapshot prices the new code correctly.
        assert cache.distance("CT", nyc, fresh) == normalized_distance("NYC", "Boston")
