"""Tests for the greedy repair heuristic."""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations, satisfies_all
from repro.errors import InconsistentCFDsError
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.cost import CostModel
from repro.repair.heuristic import repair


class TestBasicRepairs:
    def test_cust_example_repairs_clean(self, cust, cust_constraints):
        result = repair(cust, cust_constraints)
        assert result.clean
        assert satisfies_all(result.relation, cust_constraints)

    def test_original_relation_untouched(self, cust, cust_constraints):
        snapshot = cust.rows
        repair(cust, cust_constraints)
        assert cust.rows == snapshot

    def test_clean_input_needs_no_changes(self, cust, cfd_phi1, cfd_phi3):
        result = repair(cust, [cfd_phi1, cfd_phi3])
        assert result.clean
        assert result.changes == []
        assert result.total_cost == 0.0

    def test_constant_violation_fixed_to_pattern_constant(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "wrong")])
        cfd = CFD.build(["A"], ["B"], [["a", "right"]])
        result = repair(relation, [cfd])
        assert result.clean
        assert result.relation.value(0, "B") == "right"

    def test_variable_violation_resolved_to_plurality_value(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "x"), ("a", "x"), ("a", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        result = repair(relation, [cfd])
        assert result.clean
        values = {result.relation.value(i, "B") for i in range(3)}
        assert values == {"x"}
        assert len(result.changes) == 1

    def test_empty_cfd_list(self, cust):
        result = repair(cust, [])
        assert result.clean
        assert result.changes == []

    def test_empty_relation(self, cust_constraints):
        schema = Schema("cust", ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"])
        result = repair(Relation(schema), cust_constraints)
        assert result.clean

    def test_duplicate_cfd_names_resolve_to_the_right_cfd(self):
        """Auto-derived names collide; the repair must not wedge on the wrong one.

        Both CFDs are named ``cfd_A__B``.  The first's pattern has a
        don't-care RHS, so it can never produce a variable violation; a bare
        name lookup would pick it, return no fix, and raise 'no progress'.
        """
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("1", "x"), ("1", "y")])
        dontcare_rhs = CFD.build(["A"], ["B"], [["1", "@"]])
        plain_fd = CFD.build(["A"], ["B"], [["_", "_"]])
        for method in ("scan", "indexed", "incremental"):
            result = repair(relation, [dontcare_rhs, plain_fd], method=method)
            assert result.clean
            assert len(result.changes) == 1

    def test_inconsistent_cfds_rejected(self, cust):
        inconsistent = [
            CFD.build(["CC"], ["CT"], [["_", "x"]]),
            CFD.build(["CC"], ["CT"], [["_", "y"]]),
        ]
        with pytest.raises(InconsistentCFDsError):
            repair(cust, inconsistent)


class TestRepairBookkeeping:
    def test_changes_record_old_and_new_values(self, cust, cust_constraints):
        result = repair(cust, cust_constraints)
        for change in result.changes:
            assert change.old_value != change.new_value
            assert result.relation.value(change.tuple_index, change.attribute) is not None

    def test_total_cost_positive_when_changes_exist(self, cust, cust_constraints):
        result = repair(cust, cust_constraints)
        assert result.changes
        assert result.total_cost > 0

    def test_summary_fields(self, cust, cust_constraints):
        summary = repair(cust, cust_constraints).summary()
        assert set(summary) == {"changes", "total_cost", "clean", "passes"}

    def test_changed_cells_are_unique_pairs(self, cust, cust_constraints):
        result = repair(cust, cust_constraints)
        assert len(result.changed_cells()) <= len(result.changes)

    def test_cost_model_weights_steer_the_plurality_choice(self):
        """With a heavily trusted minority tuple, the group moves to its value."""
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "x"), ("a", "x"), ("a", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        trusted_minority = CostModel(tuple_weights={0: 100.0, 1: 100.0})
        cheap = repair(relation, [cfd])
        assert cheap.relation.value(2, "B") == "x"
        expensive = repair(relation, [cfd], cost_model=CostModel(tuple_weights={2: 100.0}))
        # Moving tuple 2 now costs 100, so the cheaper repair moves tuples 0 and 1.
        assert expensive.relation.value(0, "B") == "y"
        assert trusted_minority is not None


class TestGeneratedWorkloads:
    def test_noisy_tax_records_become_clean(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_state_cfd, exemption_cfd

        cfds = [zip_state_cfd(), exemption_cfd()]
        result = repair(small_tax_workload.relation, cfds)
        assert result.clean
        assert find_all_violations(result.relation, cfds).is_clean()

    def test_repair_touches_mostly_dirty_tuples(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_state_cfd

        cfds = [zip_state_cfd()]
        result = repair(small_tax_workload.relation, cfds)
        changed = {change.tuple_index for change in result.changes}
        # Every changed tuple must at least have been involved in a violation.
        report = find_all_violations(small_tax_workload.relation, cfds)
        assert changed <= set(report.violating_indices())
