"""Unit tests for the delta-maintained repair state and the index update hooks."""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.detection.partition_index import PartitionIndex, PartitionIndexCache
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.incremental import RepairState, canonical_order


def _ab_relation(rows):
    return Relation(Schema("r", ["A", "B"]), rows)


# ---------------------------------------------------------------------------
# PartitionIndex.reindex_tuple
# ---------------------------------------------------------------------------
class TestReindexTuple:
    def test_moves_tuple_between_existing_classes(self):
        rel = _ab_relation([("a", "x"), ("b", "y"), ("a", "z")])
        index = PartitionIndex.from_relation(rel, ("A",))
        moved = index.reindex_tuple(0, ("a", "x"), ("b", "x"))
        assert moved
        assert index.get(("a",)) == (2,)
        assert index.get(("b",)) == (0, 1)  # ascending order preserved

    def test_creates_fresh_class_and_drops_empty_class(self):
        rel = _ab_relation([("a", "x"), ("a", "y")])
        index = PartitionIndex.from_relation(rel, ("A",))
        index.reindex_tuple(1, ("a", "y"), ("c", "y"))
        assert index.get(("c",)) == (1,)
        assert index.get(("a",)) == (0,)
        index.reindex_tuple(0, ("a", "x"), ("c", "x"))
        assert ("a",) not in index
        assert index.get(("c",)) == (0, 1)
        assert len(index) == 1
        assert index.tuple_count == 2

    def test_noop_when_key_unchanged(self):
        rel = _ab_relation([("a", "x")])
        index = PartitionIndex.from_relation(rel, ("A",))
        assert not index.reindex_tuple(0, ("a", "x"), ("a", "changed"))
        assert index.get(("a",)) == (0,)

    def test_unknown_tuple_rejected(self):
        rel = _ab_relation([("a", "x")])
        index = PartitionIndex.from_relation(rel, ("A",))
        with pytest.raises(DetectionError):
            index.reindex_tuple(5, ("a", "x"), ("b", "x"))
        with pytest.raises(DetectionError):
            index.reindex_tuple(0, ("zzz", "x"), ("b", "x"))


# ---------------------------------------------------------------------------
# PartitionIndexCache.apply_update
# ---------------------------------------------------------------------------
class TestCacheApplyUpdate:
    def test_only_indexes_mentioning_the_attribute_are_touched(self):
        rel = _ab_relation([("a", "x"), ("a", "y")])
        cache = PartitionIndexCache(rel)
        index_a = cache.get(("A",))
        index_b = cache.get(("B",))
        old_row = rel[0]
        rel.update(0, "A", "c")
        assert cache.apply_update(0, "A", old_row) == 1
        assert index_a.get(("c",)) == (0,)
        # The B index partitions by an untouched attribute: same groups.
        assert index_b.get(("x",)) == (0,)
        assert index_b.get(("y",)) == (1,)

    def test_updated_index_serves_hits_not_rebuilds(self):
        rel = _ab_relation([("a", "x"), ("a", "y")])
        cache = PartitionIndexCache(rel)
        index = cache.get(("A",))
        old_row = rel[0]
        rel.update(0, "A", "b")
        cache.apply_update(0, "A", old_row)
        assert cache.get(("A",)) is index  # the same object, maintained in place
        assert cache.stats()["misses"] == 1


# ---------------------------------------------------------------------------
# RepairState
# ---------------------------------------------------------------------------
class TestRepairStateInitial:
    def test_initial_report_matches_oracle(self, cust, cust_constraints):
        state = RepairState(cust, cust_constraints)
        oracle = find_all_violations(cust, cust_constraints)
        assert list(state.report()) == canonical_order(oracle, cust_constraints)
        assert state.violation_count() == len(oracle)

    def test_clean_relation_is_clean(self):
        rel = _ab_relation([("a", "x"), ("b", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        assert state.is_clean()
        assert state.report().is_clean()


class TestApplyChange:
    def test_rhs_change_clears_variable_violation(self):
        rel = _ab_relation([("a", "x"), ("a", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        assert not state.is_clean()
        assert state.apply_change(1, "B", "x")
        assert state.is_clean()
        assert rel.value(1, "B") == "x"

    def test_lhs_change_moves_tuple_between_classes(self):
        # Tuples 0,1 conflict in class ('a',); moving tuple 1 into class
        # ('b',) creates a *new* conflict there and clears the old one.
        rel = _ab_relation([("a", "x"), ("a", "y"), ("b", "z")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        assert state.apply_change(1, "A", "b")
        report = state.report()
        [violation] = report.variable_violations()
        assert violation.group_key == ("b",)
        assert violation.tuple_indices == (1, 2)

    def test_lhs_change_to_fresh_value_creates_singleton_class(self):
        rel = _ab_relation([("a", "x"), ("a", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        assert state.apply_change(0, "A", "__fresh__")
        assert state.is_clean()

    def test_constant_violation_appears_and_clears(self):
        rel = _ab_relation([("a", "right")])
        cfd = CFD.build(["A"], ["B"], [["a", "right"]])
        state = RepairState(rel, [cfd])
        assert state.is_clean()
        state.apply_change(0, "B", "wrong")
        [violation] = state.report().constant_violations()
        assert violation.expected == "right" and violation.actual == "wrong"
        state.apply_change(0, "B", "right")
        assert state.is_clean()

    def test_noop_change_returns_false_and_costs_nothing(self):
        rel = _ab_relation([("a", "x")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        assert not state.apply_change(0, "B", "x")
        assert state.stats()["changes_applied"] == 0

    def test_only_patterns_mentioning_the_attribute_reevaluate(self):
        schema = Schema("r", ["A", "B", "C"])
        rel = Relation(schema, [("a", "x", "c1"), ("a", "x", "c2")])
        ab = CFD.build(["A"], ["B"], [["_", "_"]])
        ac = CFD.build(["A"], ["C"], [["_", "_"]])
        state = RepairState(rel, [ab, ac])
        before = state.stats()["patterns_reevaluated"]
        state.apply_change(0, "C", "c2")  # only the [A] -> [C] pattern cares
        assert state.stats()["patterns_reevaluated"] == before + 1

    def test_delta_touches_only_the_two_affected_classes(self):
        rows = [(f"k{i}", "v") for i in range(50)] + [("k0", "w")]
        rel = _ab_relation(rows)
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        before = state.stats()["partitions_reevaluated"]
        state.apply_change(50, "A", "k1")  # moves between classes k0 and k1
        assert state.stats()["partitions_reevaluated"] == before + 2

    def test_report_tracks_oracle_through_a_change_sequence(self, cust, cust_constraints):
        state = RepairState(cust, cust_constraints)
        changes = [
            (0, "CT", "MH"),
            (3, "STR", "Elm Str."),
            (1, "ZIP", "10012"),
            (2, "AC", "908"),
            (0, "CT", "NYC"),
        ]
        for tuple_index, attribute, value in changes:
            state.apply_change(tuple_index, attribute, value)
            oracle = find_all_violations(cust, cust_constraints)
            assert list(state.report()) == canonical_order(oracle, cust_constraints)

    def test_mutating_outside_apply_change_raises_on_the_next_read(self):
        # The state used to go silently stale here (the old documented
        # hazard); the relation's version counter now turns every read after
        # a bypassing mutation into a loud DetectionError.
        rel = _ab_relation([("a", "x"), ("a", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        rel.update(1, "B", "x")  # bypasses the state
        with pytest.raises(DetectionError):
            state.is_clean()
        with pytest.raises(DetectionError):
            state.report()
        assert not find_all_violations(rel, [cfd])

    def test_delete_invalidates_the_state(self):
        rel = _ab_relation([("a", "x"), ("a", "y"), ("b", "z")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        state = RepairState(rel, [cfd])
        rel.delete(0)  # shifts every later tuple index
        with pytest.raises(DetectionError):
            state.report()
        with pytest.raises(DetectionError):
            state.apply_change(0, "B", "w")
