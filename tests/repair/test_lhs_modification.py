"""The Section 6 scenario: some CFD violations can only be repaired on the LHS.

The paper's example: attr(R) = (A, B, C), I = {(a1, b1, c1), (a1, b2, c2)} and
Σ = { (A → B, (_, _)), (C → B, {(c1, b1), (c2, b2)}) }.  The instance violates
Σ and — unlike with plain FDs — no sequence of RHS-only modifications can fix
it, because the two tuples' B values are pinned to different constants by the
second CFD while the first demands they be equal.
"""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations, satisfies_all
from repro.reasoning.consistency import is_consistent
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import repair


@pytest.fixture
def section6_instance():
    schema = Schema("r", ["A", "B", "C"])
    return Relation(schema, [("a1", "b1", "c1"), ("a1", "b2", "c2")])


@pytest.fixture
def section6_sigma():
    return [
        CFD.build(["A"], ["B"], [["_", "_"]], name="a_to_b"),
        CFD.build(["C"], ["B"], [["c1", "b1"], ["c2", "b2"]], name="c_pins_b"),
    ]


class TestSection6Example:
    def test_sigma_is_consistent(self, section6_sigma):
        assert is_consistent(section6_sigma)

    def test_instance_violates_sigma(self, section6_instance, section6_sigma):
        assert not find_all_violations(section6_instance, section6_sigma).is_clean()

    def test_rhs_only_modification_cannot_work(self, section6_instance, section6_sigma):
        """Changing only B values can never satisfy both CFDs simultaneously."""
        candidates = ["b1", "b2", "b3"]
        for left in candidates:
            for right in candidates:
                attempt = section6_instance.copy()
                attempt.update(0, "B", left)
                attempt.update(1, "B", right)
                assert not satisfies_all(attempt, section6_sigma)

    def test_heuristic_repairs_via_lhs_modification(self, section6_instance, section6_sigma):
        result = repair(section6_instance, section6_sigma)
        assert result.clean
        assert satisfies_all(result.relation, section6_sigma)
        touched_attributes = {change.attribute for change in result.changes}
        assert touched_attributes & {"A", "C"}, (
            "a correct repair must modify an LHS attribute of the embedded FDs"
        )

    def test_repair_reports_the_lhs_fallback(self, section6_instance, section6_sigma):
        result = repair(section6_instance, section6_sigma)
        assert any("LHS" in change.reason for change in result.changes)
