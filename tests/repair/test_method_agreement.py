"""Property-based agreement of the three repair engines.

For random small relations and random CFD sets, the scan-driven loop (the
seed behaviour), the indexed full-re-detection loop and the incremental
delta-maintained loop must walk the *same* trajectory: same change sequence,
same repaired relation, same clean-or-not outcome, same total cost.  The
canonical violation order is what makes this hold — these properties are the
net that keeps it true.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.errors import RepairError
from repro.reasoning.consistency import is_consistent
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import REPAIR_METHODS, repair
from repro.repair.incremental import RepairState

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = ("v0", "v1", "v2")

row = st.tuples(*(st.sampled_from(VALUES) for _ in ATTRIBUTES))
cell = st.one_of(st.sampled_from(VALUES), st.just("_"))


@st.composite
def cfds(draw):
    n_lhs = draw(st.integers(min_value=1, max_value=2))
    lhs = list(draw(st.permutations(ATTRIBUTES)))[:n_lhs]
    remaining = [attr for attr in ATTRIBUTES if attr not in lhs]
    n_rhs = draw(st.integers(min_value=1, max_value=2))
    rhs = remaining[:n_rhs]
    n_patterns = draw(st.integers(min_value=1, max_value=3))
    patterns = []
    for _ in range(n_patterns):
        pattern = {attr: draw(cell) for attr in lhs}
        pattern.update({attr: draw(cell) for attr in rhs})
        patterns.append(pattern)
    return CFD.build(lhs, rhs, patterns)


@st.composite
def relations(draw):
    rows = draw(st.lists(row, min_size=0, max_size=8))
    return Relation(Schema("r", ATTRIBUTES), rows)


def _run(relation, cfd_list, method):
    """A comparable trajectory fingerprint, or the raised RepairError."""
    try:
        result = repair(relation, cfd_list, check_consistency=False, method=method)
    except RepairError as error:
        return ("error", str(error))
    return (
        result.clean,
        result.passes,
        round(result.total_cost, 9),
        tuple(
            (c.tuple_index, c.attribute, c.old_value, c.new_value, c.reason)
            for c in result.changes
        ),
        result.relation.rows,
    )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_all_repair_methods_walk_the_same_trajectory(relation, cfd_list):
    assume(is_consistent(cfd_list))
    scan = _run(relation, cfd_list, "scan")
    for method in REPAIR_METHODS:
        if method == "scan":
            continue
        assert _run(relation, cfd_list, method) == scan, method


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_incremental_repair_reaches_equal_outcome_and_cost(relation, cfd_list):
    """The ISSUE's weaker contract, stated on its own: same clean-or-not
    outcome and an equal-or-lower total cost than the seed scan loop."""
    assume(is_consistent(cfd_list))
    try:
        scan = repair(relation, cfd_list, check_consistency=False, method="scan")
    except RepairError:
        return
    incremental = repair(relation, cfd_list, check_consistency=False, method="incremental")
    assert incremental.clean == scan.clean
    assert incremental.total_cost <= scan.total_cost + 1e-9
    if incremental.clean:
        assert find_all_violations(incremental.relation, cfd_list).is_clean()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    relations(),
    st.lists(cfds(), min_size=1, max_size=2),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.sampled_from(ATTRIBUTES),
            st.sampled_from(VALUES),
        ),
        max_size=6,
    ),
)
def test_repair_state_tracks_oracle_under_random_changes(relation, cfd_list, edits):
    """After any sequence of apply_change calls, the maintained report equals
    a from-scratch oracle detection (as violation sets)."""
    state = RepairState(relation, cfd_list)
    for tuple_index, attribute, value in edits:
        if tuple_index >= len(relation):
            continue
        state.apply_change(tuple_index, attribute, value)
        oracle = find_all_violations(relation, cfd_list)
        assert set(state.report().violations) == set(oracle.violations)
        assert state.is_clean() == oracle.is_clean()
