"""Tests for the SQL dialect helpers."""

import pytest

from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.errors import SQLGenerationError
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect


class TestIdentifiers:
    def test_simple_identifier_quoted(self):
        assert DEFAULT_DIALECT.quote_identifier("ZIP") == '"ZIP"'

    def test_identifier_with_double_quote_rejected(self):
        with pytest.raises(SQLGenerationError):
            DEFAULT_DIALECT.quote_identifier('bad"name')

    def test_column_rendering(self):
        assert DEFAULT_DIALECT.column("t", "CC") == 't."CC"'


class TestLiterals:
    def test_string_literal_escaped(self):
        assert DEFAULT_DIALECT.literal("O'Hare") == "'O''Hare'"

    def test_numeric_literals(self):
        assert DEFAULT_DIALECT.literal(42) == "42"
        assert DEFAULT_DIALECT.literal(2.5) == "2.5"

    def test_bool_literals(self):
        assert DEFAULT_DIALECT.literal(True) == "1"
        assert DEFAULT_DIALECT.literal(False) == "0"

    def test_none_literal(self):
        assert DEFAULT_DIALECT.literal(None) == "NULL"


class TestCellEncoding:
    def test_wildcard_and_dontcare_markers(self):
        assert DEFAULT_DIALECT.encode_cell(WILDCARD) == "_"
        assert DEFAULT_DIALECT.encode_cell(DONTCARE) == "@"

    def test_constant_passthrough(self):
        assert DEFAULT_DIALECT.encode_cell(PatternValue.constant("NYC")) == "NYC"

    def test_custom_markers(self):
        dialect = SQLDialect(wildcard_marker="<ANY>", dontcare_marker="<SKIP>")
        assert dialect.encode_cell(WILDCARD) == "<ANY>"
        assert dialect.encode_cell(DONTCARE) == "<SKIP>"

    def test_column_name_prefixes(self):
        assert DEFAULT_DIALECT.lhs_column("CC") == "x_CC"
        assert DEFAULT_DIALECT.rhs_column("CT") == "y_CT"


class TestPredicates:
    def test_match_predicate_cnf_shape(self):
        predicate = DEFAULT_DIALECT.match_predicate('t."CC"', 'tp."x_CC"')
        assert 't."CC" = tp."x_CC"' in predicate
        assert "OR" in predicate and "'_'" in predicate
        assert "'@'" not in predicate

    def test_match_predicate_with_dontcare(self):
        predicate = DEFAULT_DIALECT.match_predicate('t."CC"', 'tp."x_CC"', with_dontcare=True)
        assert "'@'" in predicate

    def test_mismatch_predicate_shape(self):
        predicate = DEFAULT_DIALECT.mismatch_predicate('t."CT"', 'tp."y_CT"')
        assert "<>" in predicate and "AND" in predicate

    def test_concat_single_column(self):
        assert DEFAULT_DIALECT.concat(['t."CT"']) == 't."CT"'

    def test_concat_multiple_columns_uses_separator(self):
        rendered = DEFAULT_DIALECT.concat(['t."A"', 't."B"'])
        assert "||" in rendered

    def test_concat_empty_rejected(self):
        with pytest.raises(SQLGenerationError):
            DEFAULT_DIALECT.concat([])
