"""Edge-case data values through the SQL detection path.

Data and pattern constants are passed to SQLite as bound parameters, so
quotes, unicode and marker-like strings must survive the round trip; these
tests pin that down by cross-checking against the in-memory oracle.
"""


from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.detection.engine import cross_check
from repro.relation.relation import Relation
from repro.relation.schema import Schema


def _check(relation, cfds):
    result = cross_check(relation, cfds, form="dnf")
    assert result.agree, f"in-memory {result.inmemory_indices} vs sql {result.sql_indices}"
    merged = cross_check(relation, cfds, strategy="merged")
    assert merged.agree
    return result


class TestAwkwardValues:
    def test_single_quotes_in_values(self):
        schema = Schema("r", ["CT", "ST"])
        relation = Relation(schema, [("O'Fallon", "MO"), ("O'Fallon", "IL")])
        cfd = CFD.build(["CT"], ["ST"], [["O'Fallon", "MO"]], name="quote")
        result = _check(relation, [cfd])
        # tuple 1 clashes with the constant, and the pair additionally disagrees on ST
        assert result.inmemory_indices == frozenset({0, 1})

    def test_double_quotes_and_backslashes(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [('say "hi"\\', "x"), ('say "hi"\\', "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]], name="fd")
        result = _check(relation, [cfd])
        assert result.inmemory_indices == frozenset({0, 1})

    def test_unicode_values(self):
        schema = Schema("r", ["CT", "ST"])
        relation = Relation(schema, [("Zürich", "ZH"), ("Zürich", "GE"), ("Genève", "GE")])
        cfd = CFD.build(["CT"], ["ST"], [["Zürich", "ZH"]], name="unicode")
        result = _check(relation, [cfd])
        # tuple 1 clashes with the constant and the Zürich pair disagrees on ST
        assert result.inmemory_indices == frozenset({0, 1})

    def test_empty_string_values(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("", "x"), ("", "y")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]], name="fd")
        result = _check(relation, [cfd])
        assert result.inmemory_indices == frozenset({0, 1})

    def test_numeric_values(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [(1, 10), (1, 20), (2, 30)])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]], name="fd")
        result = _check(relation, [cfd])
        assert result.inmemory_indices == frozenset({0, 1})

    def test_marker_like_data_value_on_rhs_is_not_a_wildcard(self):
        """A data value equal to the wildcard marker must still be compared as data."""
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "_"), ("a", "x")])
        cfd = CFD.build(["A"], ["B"], [["a", "x"]], name="const")
        # in-memory: tuple 0 clashes with the constant 'x'
        oracle = find_all_violations(relation, [cfd])
        assert {v.tuple_indices[0] for v in oracle.constant_violations()} == {0}
        result = _check(relation, [cfd])
        assert 0 in result.inmemory_indices

    def test_long_values(self):
        long_value = "x" * 5000
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [(long_value, "b1"), (long_value, "b2")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]], name="fd")
        result = _check(relation, [cfd])
        assert result.inmemory_indices == frozenset({0, 1})


class TestKnownMarkerCollisionLimitation:
    def test_wildcard_marker_on_the_lhs_is_a_documented_false_match(self):
        """A *pattern-side* cell can never hold the literal string '_' (it is the
        wildcard token); a *data-side* '_' on a join attribute is compared by
        value and matches only the wildcard or an equal constant, which the
        default dialect cannot express.  The in-memory detector treats it as an
        ordinary value, so the two backends are documented to agree only when
        join attributes do not use the marker strings as data values."""
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("_", "x"), ("_", "y")])
        cfd = CFD.build(["A"], ["B"], [["other", "_"]], name="const_lhs")
        oracle = find_all_violations(relation, [cfd])
        assert oracle.is_clean()
