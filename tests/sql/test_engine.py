"""Tests for the SQLite detection engine."""

import pytest

from repro.core.satisfaction import find_all_violations
from repro.errors import DetectionError
from repro.sql.engine import SQLDetector


@pytest.fixture
def detector(cust):
    with SQLDetector(cust) as det:
        yield det


class TestDetect:
    @pytest.mark.parametrize("strategy,form", [
        ("per_cfd", "cnf"),
        ("per_cfd", "dnf"),
        ("merged", "cnf"),
    ])
    def test_strategies_agree_with_oracle_on_cust(self, cust, cust_constraints, strategy, form):
        oracle = find_all_violations(cust, cust_constraints)
        with SQLDetector(cust) as detector:
            run = detector.detect(cust_constraints, strategy=strategy, form=form)
        assert run.report.violating_indices() == oracle.violating_indices()

    def test_empty_cfd_list(self, detector):
        run = detector.detect([])
        assert run.report.is_clean()
        assert run.timings == []

    def test_unknown_strategy_rejected(self, detector, cust_constraints):
        with pytest.raises(DetectionError):
            detector.detect(cust_constraints, strategy="magic")

    def test_clean_relation_produces_clean_report(self, clean_tax_relation):
        from repro.datagen.cfd_catalog import zip_state_cfd

        with SQLDetector(clean_tax_relation) as detector:
            run = detector.detect([zip_state_cfd()])
        assert run.report.is_clean()

    def test_constant_violations_carry_pattern_provenance(self, detector, cfd_phi2):
        run = detector.detect([cfd_phi2])
        constant = run.report.constant_violations()
        assert constant
        assert all(violation.cfd_name == "phi2" for violation in constant)
        assert all(violation.pattern_index == 0 for violation in constant)

    def test_variable_violations_expanded_to_tuples(self, detector, cfd_phi2):
        run = detector.detect([cfd_phi2])
        variable = run.report.variable_violations()
        assert variable
        indices = set()
        for violation in variable:
            indices.update(violation.tuple_indices)
        assert indices == {2, 3}

    def test_expansion_can_be_disabled(self, detector, cfd_phi2):
        run = detector.detect([cfd_phi2], expand_variable_violations=False)
        variable = run.report.variable_violations()
        assert variable
        assert all(violation.tuple_indices == () for violation in variable)

    def test_detector_is_reusable(self, detector, cust_constraints):
        first = detector.detect(cust_constraints)
        second = detector.detect(cust_constraints)
        assert first.report.violating_indices() == second.report.violating_indices()


class TestTimings:
    def test_per_cfd_timings_cover_both_queries(self, detector, cust_constraints):
        run = detector.detect(cust_constraints, expand_variable_violations=False)
        labels = {timing.label for timing in run.timings}
        for cfd in cust_constraints:
            assert f"qc:{cfd.name}" in labels
            assert f"qv:{cfd.name}" in labels

    def test_merged_timings_have_two_queries(self, detector, cust_constraints):
        run = detector.detect(cust_constraints, strategy="merged", expand_variable_violations=False)
        labels = [timing.label for timing in run.timings]
        assert labels == ["qc:merged", "qv:merged"]

    def test_total_and_prefix_sums(self, detector, cust_constraints):
        run = detector.detect(cust_constraints, expand_variable_violations=False)
        assert run.total_seconds == pytest.approx(
            sum(timing.seconds for timing in run.timings)
        )
        assert run.seconds_for("qc") <= run.total_seconds

    def test_timings_record_row_counts(self, detector, cfd_phi2):
        run = detector.detect([cfd_phi2], expand_variable_violations=False)
        qc_timing = next(timing for timing in run.timings if timing.label.startswith("qc"))
        assert qc_timing.rows == 2


class TestGeneratedSQL:
    def test_per_cfd_sql_map(self, detector, cust_constraints):
        queries = detector.generated_sql(cust_constraints, strategy="per_cfd", form="cnf")
        assert len(queries) == 2 * len(cust_constraints)
        assert all("SELECT" in sql for sql in queries.values())

    def test_merged_sql_map(self, detector, cust_constraints):
        queries = detector.generated_sql(cust_constraints, strategy="merged")
        assert set(queries) == {"qc:merged", "qv:merged"}

    def test_unknown_strategy_rejected(self, detector, cust_constraints):
        with pytest.raises(DetectionError):
            detector.generated_sql(cust_constraints, strategy="magic")


class TestLargerWorkload:
    def test_generated_workload_cross_backend_agreement(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_state_cfd, exemption_cfd

        relation = small_tax_workload.relation
        cfds = [zip_state_cfd(), exemption_cfd()]
        oracle = find_all_violations(relation, cfds)
        with SQLDetector(relation) as detector:
            per_cfd = detector.detect(cfds, strategy="per_cfd", form="dnf")
            merged = detector.detect(cfds, strategy="merged")
        assert per_cfd.report.violating_indices() == oracle.violating_indices()
        assert merged.report.violating_indices() == oracle.violating_indices()

    def test_detected_tuples_are_subset_of_injected_plus_collateral(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_state_cfd

        relation = small_tax_workload.relation
        with SQLDetector(relation) as detector:
            run = detector.detect([zip_state_cfd()])
        constant_violators = {
            violation.tuple_indices[0] for violation in run.report.constant_violations()
        }
        # Every constant (single-tuple) violation must be an injected dirty tuple.
        assert constant_violators <= small_tax_workload.dirty_indices
