"""Tests for the inlined-constants ablation query builder."""

import sqlite3

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_violations
from repro.datagen.cust import cust_relation, phi2, phi3
from repro.sql.inline import InlineCFDQueryBuilder
from repro.sql.loader import load_relation
from repro.sql.single import SingleCFDQueryBuilder


@pytest.fixture
def connection():
    conn = sqlite3.connect(":memory:")
    load_relation(conn, cust_relation())
    yield conn
    conn.close()


class TestInlineQueries:
    def test_qc_agrees_with_oracle_on_cust(self, connection):
        builder = InlineCFDQueryBuilder(phi2(), "cust")
        rows = connection.execute(builder.qc_sql()).fetchall()
        oracle = find_violations(cust_relation(), phi2())
        assert {row[0] for row in rows} == {v.tuple_index for v in oracle.constant_violations()}

    def test_qv_agrees_with_oracle_on_cust(self, connection):
        builder = InlineCFDQueryBuilder(phi2(), "cust")
        rows = connection.execute(builder.qv_sql()).fetchall()
        assert ("01", "212", "2222222") in {tuple(row) for row in rows}

    def test_clean_cfd_returns_nothing(self, connection):
        builder = InlineCFDQueryBuilder(phi3(), "cust")
        assert connection.execute(builder.qc_sql()).fetchall() == []
        assert connection.execute(builder.qv_sql()).fetchall() == []

    def test_no_constant_rhs_qc_is_empty(self, connection):
        fd_like = CFD.build(["CC", "AC"], ["CT"], [["_", "_", "_"]], name="fd")
        builder = InlineCFDQueryBuilder(fd_like, "cust")
        assert connection.execute(builder.qc_sql()).fetchall() == []

    def test_query_size_grows_with_tableau(self):
        small = CFD.build(["ZIP"], ["ST"], [[f"z{i}", f"s{i}"] for i in range(5)], name="small")
        large = CFD.build(["ZIP"], ["ST"], [[f"z{i}", f"s{i}"] for i in range(500)], name="large")
        small_size = InlineCFDQueryBuilder(small, "taxrecords").query_text_size()
        large_size = InlineCFDQueryBuilder(large, "taxrecords").query_text_size()
        assert large_size > 50 * small_size

    def test_join_form_size_is_constant_in_tableau(self):
        small = CFD.build(["ZIP"], ["ST"], [[f"z{i}", f"s{i}"] for i in range(5)], name="x")
        large = CFD.build(["ZIP"], ["ST"], [[f"z{i}", f"s{i}"] for i in range(500)], name="x")
        small_sql = SingleCFDQueryBuilder(small, "taxrecords", "tab_x").qc_sql("dnf")
        large_sql = SingleCFDQueryBuilder(large, "taxrecords", "tab_x").qc_sql("dnf")
        assert small_sql == large_sql

    def test_agreement_on_generated_data(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_state_cfd

        cfd = zip_state_cfd(tabsz=200, seed=3)
        relation = small_tax_workload.relation
        connection = sqlite3.connect(":memory:")
        table = load_relation(connection, relation)
        inline_rows = connection.execute(InlineCFDQueryBuilder(cfd, table).qc_sql()).fetchall()
        oracle = find_violations(relation, cfd)
        assert {row[0] for row in inline_rows} == {
            v.tuple_index for v in oracle.constant_violations()
        }
        connection.close()
