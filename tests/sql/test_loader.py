"""Tests for loading relations and tableaux into SQLite."""

import sqlite3

import pytest

from repro.core.cfd import CFD
from repro.datagen.cust import cust_relation, phi2, phi3, phi5
from repro.sql.dialect import DEFAULT_DIALECT
from repro.sql.loader import (
    create_indexes,
    data_table_name,
    load_merged_tableau,
    load_relation,
    load_single_tableau,
    sanitize_name,
    tableau_table_name,
)
from repro.sql.merge import merge_cfds


@pytest.fixture
def connection():
    conn = sqlite3.connect(":memory:")
    yield conn
    conn.close()


class TestNames:
    def test_sanitize_replaces_special_characters(self):
        assert sanitize_name("my table!") == "my_table_"

    def test_sanitize_prefixes_leading_digit(self):
        assert sanitize_name("1abc").startswith("t_")

    def test_sanitize_empty(self):
        assert sanitize_name("") == "t_"

    def test_table_name_helpers(self):
        assert data_table_name(cust_relation()) == "cust"
        assert tableau_table_name(phi2()) == "tab_phi2"


class TestRelationLoading:
    def test_row_count_and_index_column(self, connection):
        relation = cust_relation()
        table = load_relation(connection, relation)
        count = connection.execute(f'SELECT COUNT(*) FROM "{table}"').fetchone()[0]
        assert count == len(relation)
        indices = [row[0] for row in connection.execute(f'SELECT "_idx" FROM "{table}" ORDER BY "_idx"')]
        assert indices == list(range(len(relation)))

    def test_values_round_trip(self, connection):
        relation = cust_relation()
        table = load_relation(connection, relation)
        row = connection.execute(
            f'SELECT "CC", "AC", "CT" FROM "{table}" WHERE "_idx" = 5'
        ).fetchone()
        assert row == ("44", "131", "EDI")

    def test_reload_replaces_table(self, connection):
        relation = cust_relation()
        load_relation(connection, relation)
        table = load_relation(connection, relation)
        count = connection.execute(f'SELECT COUNT(*) FROM "{table}"').fetchone()[0]
        assert count == len(relation)

    def test_custom_table_name(self, connection):
        table = load_relation(connection, cust_relation(), table_name="custom")
        assert table == "custom"
        assert connection.execute('SELECT COUNT(*) FROM "custom"').fetchone()[0] == 6


class TestTableauLoading:
    def test_single_tableau_columns_and_rows(self, connection):
        cfd = phi2()
        table = load_single_tableau(connection, cfd)
        columns = [row[1] for row in connection.execute(f'PRAGMA table_info("{table}")')]
        assert "pid" in columns
        assert "x_CC" in columns and "y_CT" in columns
        count = connection.execute(f'SELECT COUNT(*) FROM "{table}"').fetchone()[0]
        assert count == len(cfd.tableau)

    def test_wildcards_stored_as_marker(self, connection):
        cfd = phi2()
        table = load_single_tableau(connection, cfd)
        markers = connection.execute(f'SELECT "x_PN" FROM "{table}"').fetchall()
        assert all(row[0] == DEFAULT_DIALECT.wildcard_marker for row in markers)

    def test_merged_tableau_tables(self, connection):
        merged = merge_cfds([phi3(), phi5()])
        tables = load_merged_tableau(connection, merged)
        x_count = connection.execute(f'SELECT COUNT(*) FROM "{tables["x"]}"').fetchone()[0]
        y_count = connection.execute(f'SELECT COUNT(*) FROM "{tables["y"]}"').fetchone()[0]
        assert x_count == y_count == len(merged)

    def test_merged_tableau_stores_dontcare(self, connection):
        merged = merge_cfds([phi3(), phi5()])
        tables = load_merged_tableau(connection, merged)
        # CC is an LHS attribute of phi3 only, so the phi5 row holds '@' there.
        values = {row[0] for row in connection.execute(f'SELECT "x_CC" FROM "{tables["x"]}"')}
        assert DEFAULT_DIALECT.dontcare_marker in values


class TestIndexes:
    def test_indexes_created_per_distinct_lhs(self, connection):
        table = load_relation(connection, cust_relation())
        created = create_indexes(connection, table, [phi2(), phi3(), phi3()])
        assert len(created) == 2  # phi3 counted once

    def test_empty_lhs_skipped(self, connection):
        table = load_relation(connection, cust_relation())
        cfd = CFD.build([], ["CT"], [["NYC"]], name="const")
        assert create_indexes(connection, table, [cfd]) == []

    def test_index_creation_is_idempotent(self, connection):
        table = load_relation(connection, cust_relation())
        create_indexes(connection, table, [phi2()])
        created = create_indexes(connection, table, [phi2()])
        assert len(created) == 1
