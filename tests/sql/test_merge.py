"""Tests for tableau merging (Section 4.2.1, Figures 6 and 7)."""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.datagen.cust import cust_relation, phi2, phi3, phi5
from repro.errors import SQLGenerationError
from repro.sql.merge import merge_cfds


class TestFigure6:
    """Merging ϕ2 and ϕ3 into the union-compatible ϕ4."""

    def test_attribute_union(self):
        merged = merge_cfds([phi2(), phi3()])
        assert set(merged.lhs_attributes) == {"CC", "AC", "PN"}
        assert set(merged.rhs_attributes) == {"STR", "CT", "ZIP"}

    def test_row_count_is_total_pattern_count(self):
        merged = merge_cfds([phi2(), phi3()])
        assert len(merged) == len(phi2().tableau) + len(phi3().tableau)

    def test_missing_attributes_become_dontcare(self):
        merged = merge_cfds([phi2(), phi3()])
        phi3_rows = [row for row in merged if row.source_cfd == "phi3"]
        for row in phi3_rows:
            assert row.lhs_cell("PN").is_dontcare
            assert row.rhs_cell("STR").is_dontcare
            assert row.rhs_cell("ZIP").is_dontcare
            assert not row.rhs_cell("CT").is_dontcare

    def test_provenance_recorded(self):
        merged = merge_cfds([phi2(), phi3()])
        assert {row.source_cfd for row in merged} == {"phi2", "phi3"}
        assert [row.pattern_id for row in merged] == list(range(len(merged)))


class TestFigure7:
    """Merging ϕ3 and ϕ5 splits into T^X and T^Y with CT and AC on both sides."""

    def test_attribute_appears_on_both_sides(self):
        merged = merge_cfds([phi3(), phi5()])
        assert "CT" in merged.lhs_attributes and "CT" in merged.rhs_attributes
        assert "AC" in merged.lhs_attributes and "AC" in merged.rhs_attributes

    def test_x_and_y_views_are_aligned_by_pattern_id(self):
        merged = merge_cfds([phi3(), phi5()])
        x_ids = [pattern_id for pattern_id, _ in merged.x_rows()]
        y_ids = [pattern_id for pattern_id, _ in merged.y_rows()]
        assert x_ids == y_ids

    def test_phi5_row_masks_cc_and_ac_on_the_lhs(self):
        merged = merge_cfds([phi3(), phi5()])
        phi5_row = next(row for row in merged if row.source_cfd == "phi5")
        assert phi5_row.lhs_cell("CC").is_dontcare
        assert phi5_row.lhs_cell("AC").is_dontcare
        assert phi5_row.lhs_cell("CT").is_wildcard
        assert phi5_row.rhs_cell("AC").is_wildcard
        assert phi5_row.rhs_cell("CT").is_dontcare

    def test_ymask_reflects_free_rhs_attributes(self):
        merged = merge_cfds([phi3(), phi5()])
        phi3_row = next(row for row in merged if row.source_cfd == "phi3")
        phi5_row = next(row for row in merged if row.source_cfd == "phi5")
        assert phi3_row.ymask() != phi5_row.ymask()

    def test_render_shows_both_halves(self):
        merged = merge_cfds([phi3(), phi5()])
        rendered = merged.render()
        assert "T^X_Sigma" in rendered and "T^Y_Sigma" in rendered


class TestMergedSemantics:
    def test_merged_cfd_equivalent_to_separate_cfds_on_cust(self):
        """The merged '@' CFD flags exactly the tuples the individual CFDs flag."""
        relation = cust_relation()
        cfds = [phi2(), phi3()]
        merged_cfd = merge_cfds(cfds).to_cfd()
        separate = find_all_violations(relation, cfds)
        combined = find_all_violations(relation, [merged_cfd])
        assert separate.violating_indices() == combined.violating_indices()

    def test_single_cfd_merge_is_lossless(self):
        merged = merge_cfds([phi3()])
        assert set(merged.lhs_attributes) == set(phi3().lhs)
        assert len(merged) == len(phi3().tableau)

    def test_empty_input_rejected(self):
        with pytest.raises(SQLGenerationError):
            merge_cfds([])

    def test_merge_of_non_overlapping_schemas(self):
        left = CFD.build(["A"], ["B"], [["a", "b"]], name="left")
        right = CFD.build(["C"], ["D"], [["c", "d"]], name="right")
        merged = merge_cfds([left, right])
        assert set(merged.lhs_attributes) == {"A", "C"}
        assert set(merged.rhs_attributes) == {"B", "D"}
        left_row = next(row for row in merged if row.source_cfd == "left")
        assert left_row.lhs_cell("C").is_dontcare
