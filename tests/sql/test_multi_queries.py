"""Tests for the merged detection queries (Section 4.2.2, Figure 8)."""

import sqlite3

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.datagen.cust import cust_relation, phi2, phi3, phi5
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.sql.loader import load_merged_tableau, load_relation
from repro.sql.merge import merge_cfds
from repro.sql.multi import MergedQueryBuilder


def _build(connection, relation, cfds):
    data_table = load_relation(connection, relation)
    merged = merge_cfds(cfds)
    tables = load_merged_tableau(connection, merged)
    builder = MergedQueryBuilder(merged, data_table, tables["x"], tables["y"])
    return merged, builder


@pytest.fixture
def cust_setup():
    connection = sqlite3.connect(":memory:")
    relation = cust_relation()
    merged, builder = _build(connection, relation, [phi2(), phi3()])
    yield connection, relation, merged, builder
    connection.close()


class TestQueryText:
    def test_qc_joins_three_tables_on_pattern_id(self, cust_setup):
        _, _, _, builder = cust_setup
        sql = builder.qc_sql()
        assert "tx" in sql and "ty" in sql
        assert 'tx."pid" = ty."pid"' in sql

    def test_qc_handles_dontcare_in_predicates(self, cust_setup):
        _, _, _, builder = cust_setup
        sql = builder.qc_sql()
        assert "'@'" in sql

    def test_macro_uses_case_masking(self, cust_setup):
        _, _, _, builder = cust_setup
        sql = builder.macro_sql()
        assert "CASE" in sql and "WHEN '@' THEN '@'" in sql

    def test_qv_groups_over_the_macro(self, cust_setup):
        _, _, _, builder = cust_setup
        sql = builder.qv_sql()
        assert "GROUP BY" in sql and "HAVING COUNT(DISTINCT" in sql
        assert "CASE" in sql

    def test_query_size_independent_of_pattern_count(self):
        connection = sqlite3.connect(":memory:")
        relation = cust_relation()
        small_cfd = CFD.build(["CC"], ["CT"], [["01", "NYC"]], name="x")
        large_cfd = CFD.build(["CC"], ["CT"], [[f"{i}", "NYC"] for i in range(300)], name="x")
        _, small_builder = _build(connection, relation, [small_cfd])
        _, large_builder = _build(connection, relation, [large_cfd])
        assert small_builder.qc_sql() == large_builder.qc_sql()
        assert small_builder.qv_sql() == large_builder.qv_sql()
        connection.close()


class TestExecutionOnCust:
    def test_qc_finds_t1_t2(self, cust_setup):
        connection, _, _, builder = cust_setup
        rows = connection.execute(builder.qc_sql()).fetchall()
        assert {row[0] for row in rows} == {0, 1}

    def test_qc_reports_source_pattern(self, cust_setup):
        connection, _, merged, builder = cust_setup
        rows = connection.execute(builder.qc_sql()).fetchall()
        by_id = {row.pattern_id: row for row in merged.rows}
        assert all(by_id[pattern_id].source_cfd == "phi2" for _, pattern_id in rows)

    def test_qv_finds_the_212_group(self, cust_setup):
        connection, _, _, builder = cust_setup
        rows = connection.execute(builder.qv_sql()).fetchall()
        assert rows, "the t3/t4 disagreement must surface through the merged query"

    def test_expansion_recovers_t3_t4(self, cust_setup):
        connection, _, _, builder = cust_setup
        rows = connection.execute(builder.qv_expansion_sql()).fetchall()
        assert {row[-1] for row in rows} == {2, 3}

    def test_agreement_with_in_memory_union(self, cust_setup):
        connection, relation, _, builder = cust_setup
        oracle = find_all_violations(relation, [phi2(), phi3()])
        qc = {row[0] for row in connection.execute(builder.qc_sql())}
        qv = {row[-1] for row in connection.execute(builder.qv_expansion_sql())}
        assert qc | qv == set(oracle.violating_indices())


class TestFigure7Scenario:
    """Merging ϕ3 and ϕ5, whose X/Y attribute sets overlap crosswise."""

    def test_detects_phi5_violations_via_masked_group_by(self):
        connection = sqlite3.connect(":memory:")
        relation = cust_relation()
        merged, builder = _build(connection, relation, [phi3(), phi5()])
        oracle = find_all_violations(relation, [phi3(), phi5()])
        qc = {row[0] for row in connection.execute(builder.qc_sql())}
        qv = {row[-1] for row in connection.execute(builder.qv_expansion_sql())}
        assert qc | qv == set(oracle.violating_indices())
        connection.close()

    def test_same_lhs_different_rhs_cfds_do_not_interfere(self):
        """Two CFDs with identical LHS but different RHS attributes must not
        produce spurious violations when merged (the _ymask refinement)."""
        schema = Schema("r", ["A", "B", "C"])
        relation = Relation(schema, [("a1", "b1", "c1"), ("a2", "b2", "c2")])
        cfd_b = CFD.build(["A"], ["B"], [["_", "_"]], name="ab")
        cfd_c = CFD.build(["A"], ["C"], [["_", "_"]], name="ac")
        connection = sqlite3.connect(":memory:")
        merged, builder = _build(connection, relation, [cfd_b, cfd_c])
        oracle = find_all_violations(relation, [cfd_b, cfd_c])
        assert oracle.is_clean()
        qc = connection.execute(builder.qc_sql()).fetchall()
        qv = connection.execute(builder.qv_sql()).fetchall()
        assert not qc and not qv
        connection.close()
