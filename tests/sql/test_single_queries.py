"""Tests for the single-CFD detection queries (Section 4.1, Figure 5)."""

import sqlite3

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_violations
from repro.datagen.cust import cust_relation, phi2
from repro.errors import SQLGenerationError
from repro.sql.loader import create_indexes, load_relation, load_single_tableau
from repro.sql.single import SingleCFDQueryBuilder


@pytest.fixture
def builder():
    return SingleCFDQueryBuilder(phi2(), "cust", "tab_phi2")


@pytest.fixture
def loaded_cust():
    connection = sqlite3.connect(":memory:")
    relation = cust_relation()
    data_table = load_relation(connection, relation)
    cfd = phi2()
    tableau_table = load_single_tableau(connection, cfd)
    yield connection, relation, cfd, data_table, tableau_table
    connection.close()


class TestQueryText:
    def test_qc_cnf_mirrors_figure_5(self, builder):
        sql = builder.qc_sql("cnf")
        assert 'FROM "cust" t, "tab_phi2" tp' in sql
        # every X attribute appears in a match predicate
        for attribute in ("CC", "AC", "PN"):
            assert f't."{attribute}" = tp."x_{attribute}"' in sql
        # Y attributes appear in the mismatch disjunction
        for attribute in ("STR", "CT", "ZIP"):
            assert f't."{attribute}" <> tp."y_{attribute}"' in sql

    def test_qv_cnf_groups_by_x_and_counts_distinct_y(self, builder):
        sql = builder.qv_sql("cnf")
        assert "GROUP BY" in sql
        assert "HAVING COUNT(DISTINCT" in sql
        assert 't."CC"' in sql and 't."PN"' in sql

    def test_dnf_form_is_a_union_of_conjunctive_queries(self, builder):
        sql = builder.qc_sql("dnf")
        assert "UNION ALL" in sql
        assert " OR " not in sql  # each branch is purely conjunctive
        # |Y| * 2^|X| branches
        assert sql.count("SELECT") == 3 * 2 ** 3

    def test_qv_dnf_wraps_union_in_group_by(self, builder):
        sql = builder.qv_sql("dnf")
        assert "UNION ALL" in sql
        assert "GROUP BY" in sql
        assert sql.index("UNION ALL") < sql.index("GROUP BY")

    def test_query_size_independent_of_tableau_size(self):
        small = CFD.build(["A"], ["B"], [["a", "b"]], name="x")
        large = CFD.build(["A"], ["B"], [[f"a{i}", f"b{i}"] for i in range(500)], name="x")
        small_sql = SingleCFDQueryBuilder(small, "r", "tab_x").qc_sql("cnf")
        large_sql = SingleCFDQueryBuilder(large, "r", "tab_x").qc_sql("cnf")
        assert small_sql == large_sql

    def test_unknown_form_rejected(self, builder):
        with pytest.raises(SQLGenerationError):
            builder.qc_sql("nonsense")
        with pytest.raises(SQLGenerationError):
            builder.qv_sql("nonsense")

    def test_expansion_query_has_one_placeholder_per_lhs_attribute(self, builder):
        sql = builder.qv_expansion_sql()
        assert sql.count("?") == 3


class TestQueryExecution:
    """Example 4.1: Q^C returns t1, t2 and Q^V returns t3, t4 on Figure 1."""

    def _run(self, connection, sql, parameters=()):
        return connection.execute(sql, parameters).fetchall()

    @pytest.mark.parametrize("form", ["cnf", "dnf"])
    def test_qc_returns_t1_t2(self, loaded_cust, form):
        connection, _, cfd, data_table, tableau_table = loaded_cust
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        rows = self._run(connection, builder.qc_sql(form))
        assert {row[0] for row in rows} == {0, 1}

    @pytest.mark.parametrize("form", ["cnf", "dnf"])
    def test_qv_returns_the_212_group(self, loaded_cust, form):
        connection, _, cfd, data_table, tableau_table = loaded_cust
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        rows = self._run(connection, builder.qv_sql(form))
        assert ("01", "212", "2222222") in {tuple(row) for row in rows}
        assert len(rows) == 1

    def test_expansion_recovers_t3_t4(self, loaded_cust):
        connection, _, cfd, data_table, tableau_table = loaded_cust
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        rows = self._run(connection, builder.qv_expansion_sql(), ("01", "212", "2222222"))
        assert {row[0] for row in rows} == {2, 3}

    @pytest.mark.parametrize("form", ["cnf", "dnf"])
    def test_agrees_with_in_memory_detector(self, loaded_cust, form):
        connection, relation, cfd, data_table, tableau_table = loaded_cust
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        qc_indices = {row[0] for row in self._run(connection, builder.qc_sql(form))}
        oracle = find_violations(relation, cfd)
        assert qc_indices == {v.tuple_index for v in oracle.constant_violations()}

    def test_indexes_do_not_change_results(self, loaded_cust):
        connection, _, cfd, data_table, tableau_table = loaded_cust
        create_indexes(connection, data_table, [cfd])
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        rows = self._run(connection, builder.qc_sql("dnf"))
        assert {row[0] for row in rows} == {0, 1}

    def test_empty_lhs_cfd_queries_run(self):
        connection = sqlite3.connect(":memory:")
        from repro.relation.relation import Relation
        from repro.relation.schema import Schema

        relation = Relation(Schema("r", ["A", "B"]), [("x", "b"), ("y", "c")])
        cfd = CFD.build([], ["B"], [["b"]], name="const_b")
        data_table = load_relation(connection, relation)
        tableau_table = load_single_tableau(connection, cfd)
        builder = SingleCFDQueryBuilder(cfd, data_table, tableau_table)
        qc = connection.execute(builder.qc_sql("cnf")).fetchall()
        assert {row[0] for row in qc} == {1}
        connection.close()
