"""The top-level public API: everything advertised in ``repro.__all__`` works."""

import repro
import repro.pipeline

#: The advertised surface of ``repro``.  This list is a *contract*: additions
#: belong at the right place alphabetically, removals are breaking changes.
EXPECTED_REPRO_ALL = [
    "AnalysisReport",
    "AnalysisWarning",
    "Attribute",
    "CFD",
    "Cleaner",
    "CleaningResult",
    "ColumnStore",
    "ConstantViolation",
    "CSVSource",
    "DetectionConfig",
    "Diagnostic",
    "DONTCARE",
    "FD",
    "IndexedDetector",
    "IterableSource",
    "MmapColumnStore",
    "PatternTableau",
    "PatternTuple",
    "PatternValue",
    "Relation",
    "RelationSource",
    "RepairConfig",
    "RowSource",
    "Schema",
    "SQLDetector",
    "SQLiteSource",
    "VariableViolation",
    "Violation",
    "ViolationReport",
    "WILDCARD",
    "analyze",
    "as_source",
    "clean",
    "cross_check",
    "cust_cfds",
    "cust_relation",
    "detect_violations",
    "find_violations_parallel",
    "implies",
    "is_consistent",
    "kernel_names",
    "minimal_cover",
    "numpy_available",
    "register_analysis_check",
    "register_detector",
    "register_repairer",
    "repair",
    "select_detection_method",
    "select_repair_method",
    "spill_run",
    "use_kernel",
    "__version__",
]

#: The advertised surface of ``repro.pipeline``.
EXPECTED_PIPELINE_ALL = [
    "CleaningResult",
    "Cleaner",
    "DetectionConfig",
    "RepairConfig",
    "RowSource",
    "clean",
]


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is missing"

    def test_module_docstring_quickstart_holds(self):
        report = repro.detect_violations(repro.cust_relation(), repro.cust_cfds())
        assert sorted(report.violating_indices()) == [0, 1, 2, 3]

    def test_core_types_are_the_same_objects_as_submodules(self):
        from repro.core.cfd import CFD
        from repro.relation.relation import Relation

        assert repro.CFD is CFD
        assert repro.Relation is Relation

    def test_reasoning_shortcuts(self):
        psi1 = repro.CFD.build(["A"], ["B"], [["_", "b"]])
        psi2 = repro.CFD.build(["B"], ["C"], [["_", "c"]])
        assert repro.is_consistent([psi1, psi2])
        assert repro.implies([psi1, psi2], repro.CFD.build(["A"], ["C"], [["a", "_"]]))
        assert len(repro.minimal_cover([psi1, psi2])) == 2

    def test_repair_shortcut(self):
        result = repro.repair(repro.cust_relation(), repro.cust_cfds())
        assert result.clean

    def test_sql_detector_export(self):
        with repro.SQLDetector(repro.cust_relation()) as detector:
            run = detector.detect(repro.cust_cfds())
        assert not run.report.is_clean()

    def test_repro_all_is_stable(self):
        assert repro.__all__ == EXPECTED_REPRO_ALL

    def test_pipeline_all_is_stable(self):
        assert repro.pipeline.__all__ == EXPECTED_PIPELINE_ALL

    def test_pipeline_all_names_resolve(self):
        for name in repro.pipeline.__all__:
            assert hasattr(repro.pipeline, name), f"repro.pipeline.{name} is missing"

    def test_pipeline_shortcut(self):
        result = repro.Cleaner().clean(repro.cust_relation(), repro.cust_cfds())
        assert result.clean
        assert repro.detect_violations(result.relation, repro.cust_cfds()).is_clean()

    def test_pipeline_types_are_the_same_objects_as_submodules(self):
        from repro.config import DetectionConfig, RepairConfig
        from repro.pipeline import Cleaner

        assert repro.Cleaner is Cleaner
        assert repro.DetectionConfig is DetectionConfig
        assert repro.RepairConfig is RepairConfig
